package route

import (
	"sync"

	"repro/internal/geom"
)

// denseGridLimit bounds the cell count up to which world-wide per-cell
// state (static obstacles, net ownership, pin ownership, congestion
// history) is stored in flat arrays indexed by a region-local cell index.
// Larger worlds fall back to the original hash maps: a pathological
// bounding volume must not force a multi-hundred-megabyte allocation.
const denseGridLimit = 4 << 20

// denseSearchLimit bounds the search-region volume up to which one A*
// attempt uses pooled flat-array scratch state. Regions beyond it (only
// the whole-world fallback on extreme layouts) use the map-based search.
// A variable rather than a constant so tests can force the sparse path.
var denseSearchLimit = 4 << 20

// cellIndexer maps lattice cells of a bounding box to dense linear
// indices in a fixed x-major, then y, then z order.
type cellIndexer struct {
	box    geom.Box
	ny, nz int
}

// newCellIndexer builds an indexer over b.
func newCellIndexer(b geom.Box) cellIndexer {
	return cellIndexer{box: b, ny: b.Dy(), nz: b.Dz()}
}

// volume returns the number of indexable cells.
func (ci cellIndexer) volume() int { return ci.box.Volume() }

// index returns the linear index of p, which must lie inside the box.
func (ci cellIndexer) index(p geom.Point) int {
	return ((p.X-ci.box.Min.X)*ci.ny+(p.Y-ci.box.Min.Y))*ci.nz + (p.Z - ci.box.Min.Z)
}

// point is the inverse of index.
func (ci cellIndexer) point(i int) geom.Point {
	z := i % ci.nz
	i /= ci.nz
	y := i % ci.ny
	x := i / ci.ny
	return geom.Pt(ci.box.Min.X+x, ci.box.Min.Y+y, ci.box.Min.Z+z)
}

// grid holds the router's per-cell world state: static obstacles, net
// ownership, pin ownership and congestion history. Worlds up to
// denseGridLimit cells use flat arrays indexed by cellIndexer (the A*
// inner loop then runs without a single map operation); larger worlds
// degrade to the original hash maps transparently.
type grid struct {
	world geom.Box
	dense bool
	idx   cellIndexer

	static []bool
	netAt  []int32
	pinAt  []int32
	hist   []float64

	staticM map[geom.Point]bool
	netAtM  map[geom.Point]int
	pinAtM  map[geom.Point]int
	histM   map[geom.Point]float64
}

// newGrid builds the per-cell state store for the given routable world.
func newGrid(world geom.Box) *grid {
	g := &grid{world: world}
	if v := world.Volume(); v > 0 && v <= denseGridLimit {
		g.dense = true
		g.idx = newCellIndexer(world)
		g.static = make([]bool, v)
		g.netAt = make([]int32, v)
		g.pinAt = make([]int32, v)
		g.hist = make([]float64, v)
		for i := range g.netAt {
			g.netAt[i] = -1
			g.pinAt[i] = -1
		}
		return g
	}
	g.staticM = map[geom.Point]bool{}
	g.netAtM = map[geom.Point]int{}
	g.pinAtM = map[geom.Point]int{}
	g.histM = map[geom.Point]float64{}
	return g
}

// in reports whether p is indexable (inside the world). Out-of-world
// cells carry no state; callers only probe cells inside search regions,
// which are clamped to the world.
func (g *grid) in(p geom.Point) bool { return g.world.Contains(p) }

// setStatic marks p as a static obstacle cell.
func (g *grid) setStatic(p geom.Point) {
	if !g.in(p) {
		return
	}
	if g.dense {
		g.static[g.idx.index(p)] = true
		return
	}
	g.staticM[p] = true
}

// isStatic reports whether p is a static obstacle cell.
func (g *grid) isStatic(p geom.Point) bool {
	if !g.in(p) {
		return false
	}
	if g.dense {
		return g.static[g.idx.index(p)]
	}
	return g.staticM[p]
}

// setNet records net id as the owner of cell p (first owner wins is the
// caller's rule; setNet overwrites unconditionally).
func (g *grid) setNet(p geom.Point, id int) {
	if !g.in(p) {
		return
	}
	if g.dense {
		g.netAt[g.idx.index(p)] = int32(id)
		return
	}
	g.netAtM[p] = id
}

// clearNet removes net id's ownership of p if it is the recorded owner.
func (g *grid) clearNet(p geom.Point, id int) {
	if !g.in(p) {
		return
	}
	if g.dense {
		i := g.idx.index(p)
		if g.netAt[i] == int32(id) {
			g.netAt[i] = -1
		}
		return
	}
	if g.netAtM[p] == id {
		delete(g.netAtM, p)
	}
}

// netOwner returns the net occupying p, if any.
func (g *grid) netOwner(p geom.Point) (int, bool) {
	if !g.in(p) {
		return 0, false
	}
	if g.dense {
		if id := g.netAt[g.idx.index(p)]; id >= 0 {
			return int(id), true
		}
		return 0, false
	}
	id, ok := g.netAtM[p]
	return id, ok
}

// setPin records pin pid as owning cell p.
func (g *grid) setPin(p geom.Point, pid int) {
	if !g.in(p) {
		return
	}
	if g.dense {
		g.pinAt[g.idx.index(p)] = int32(pid)
		return
	}
	g.pinAtM[p] = pid
}

// pinOwner returns the pin homed at p, if any.
func (g *grid) pinOwner(p geom.Point) (int, bool) {
	if !g.in(p) {
		return 0, false
	}
	if g.dense {
		if pid := g.pinAt[g.idx.index(p)]; pid >= 0 {
			return int(pid), true
		}
		return 0, false
	}
	pid, ok := g.pinAtM[p]
	return pid, ok
}

// histAt returns the accumulated congestion history charge of p.
func (g *grid) histAt(p geom.Point) float64 {
	if !g.in(p) {
		return 0
	}
	if g.dense {
		return g.hist[g.idx.index(p)]
	}
	return g.histM[p]
}

// histAdd charges v onto p's congestion history.
func (g *grid) histAdd(p geom.Point, v float64) {
	if !g.in(p) {
		return
	}
	if g.dense {
		g.hist[g.idx.index(p)] += v
		return
	}
	g.histM[p] += v
}

// histStats returns the number of cells carrying history charge and the
// maximum charge. Both are order-independent aggregates, so the result is
// identical for the dense array walk and the map fallback regardless of
// iteration order.
func (g *grid) histStats() (cells int, maxCharge float64) {
	if g.dense {
		for _, h := range g.hist {
			if h > 0 {
				cells++
				if h > maxCharge {
					maxCharge = h
				}
			}
		}
		return cells, maxCharge
	}
	for _, h := range g.histM {
		if h > 0 {
			cells++
			if h > maxCharge {
				maxCharge = h
			}
		}
	}
	return cells, maxCharge
}

// scratch is the per-search A* state: g-scores, parent links and a
// generation stamp per region cell, plus the open heap. Generation
// stamping makes reuse O(1) — a search bumps gen instead of clearing the
// arrays — and the pool recycles scratches across searches and nets.
type scratch struct {
	capacity int
	g        []float64
	parent   []int32
	gen      []uint32
	cur      uint32
	open     pq
}

// scratchPool recycles A* scratch buffers; one scratch is checked out per
// in-flight search (concurrent searches each take their own).
var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

// reset prepares the scratch for a region of the given volume.
func (s *scratch) reset(volume int) {
	if volume > s.capacity {
		s.g = make([]float64, volume)
		s.parent = make([]int32, volume)
		s.gen = make([]uint32, volume)
		s.capacity = volume
		s.cur = 0
	}
	s.cur++
	if s.cur == 0 { // generation counter wrapped: invalidate everything
		for i := range s.gen {
			s.gen[i] = 0
		}
		s.cur = 1
	}
	s.open = s.open[:0]
}

// seen reports whether cell index i has a g-score in this generation.
func (s *scratch) seen(i int) bool { return s.gen[i] == s.cur }

// setG records g-score v for cell index i in this generation.
func (s *scratch) setG(i int, v float64, parent int32) {
	s.gen[i] = s.cur
	s.g[i] = v
	s.parent[i] = parent
}
