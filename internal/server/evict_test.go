package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/harness"
)

// TestRunLoadJobEvictedMidPoll pins the async-poll/TTL race: with a job TTL
// shorter than the polling cadence, the registry evicts a finished job
// before the poller reads its terminal state, and the subsequent poll 404s.
// That must surface as the distinct harness.ErrJobEvicted outcome — not a
// hang, not a spurious success, and not an anonymous "poll status 404"
// failure.
func TestRunLoadJobEvictedMidPoll(t *testing.T) {
	cfg := testConfig()
	// Finished jobs are eligible for eviction on the very next registry
	// sweep, which runs inside every poll's lookup.
	cfg.JobTTL = time.Nanosecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = hs.Serve(ln) }()
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer scancel()
		_ = hs.Shutdown(sctx)
		<-serveDone
	}()

	lctx, lcancel := context.WithTimeout(ctx, time.Minute)
	defer lcancel()
	results, err := harness.RunLoad(lctx, harness.LoadOptions{
		BaseURL:      "http://" + ln.Addr().String(),
		Bodies:       [][]byte{compileBody(t, realSrc, "fig4", CompileOptions{Seed: 31, Iterations: 2000})},
		Concurrency:  1,
		Async:        true,
		PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	r := results[0]
	if r.Status != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202 (body %s)", r.Status, r.ErrorBody)
	}
	if r.Err == nil {
		t.Fatalf("evicted job polled to a spurious terminal state: %+v", r)
	}
	if !errors.Is(r.Err, harness.ErrJobEvicted) {
		t.Fatalf("eviction surfaced as %v, want harness.ErrJobEvicted", r.Err)
	}
	if evicted := s.jobs.evictions(); evicted < 1 {
		t.Fatalf("registry reports %d evictions, want ≥1", evicted)
	}
}
