package lint

import (
	"go/ast"
	"go/token"
)

// GoLeak enforces the repo's goroutine-lifecycle contract in library code:
// every `go` statement must spawn work that is provably bounded by its
// spawner — the goroutine selects on a context/done channel (cooperative
// cancellation, PR 1's contract), is joined through a sync.WaitGroup whose
// Add precedes the spawn and whose Wait the package performs, or signals a
// channel the spawner receives from after the spawn. Anything else is a
// potential leak: a goroutine that outlives its request, holds its
// closure's memory, and under churn accumulates without bound.
//
// The proof is interprocedural where it needs to be: `go p.worker(ctx)` is
// accepted because worker's summary fact says its body observes
// ctx.Done(), and because the spawner's Add pairs with worker's deferred
// Done through the WaitGroup's canonical ID. Main packages and tests are
// exempt (a process's own lifetime bounds them).
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "library goroutines must be ctx/done-bounded, WaitGroup-joined, or channel-joined by their spawner",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) {
	if pass.Pkg.IsMain() {
		return
	}
	waits := packageWaitIDs(pass.Pkg)
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !goroutineBounded(pass, fd, gs, waits) {
					pass.Reportf(gs.Pos(), "goroutine is neither ctx/done-bounded, WaitGroup-joined (Add before spawn, Done inside, Wait in package), nor channel-joined by its spawner: it can leak")
				}
				return true
			})
		}
	}
}

// packageWaitIDs collects the canonical IDs of every WaitGroup the package
// calls Wait on, anywhere (the join may live in a different method than
// the spawn, like pool.start/pool.drain).
func packageWaitIDs(pkg *Package) map[string]bool {
	out := map[string]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Wait" || !isWaitGroup(pkg.Info.TypeOf(sel.X)) {
				return true
			}
			if id := syncObjID(pkg, sel.X); id != "" {
				out[id] = true
			}
			return true
		})
	}
	return out
}

// goroutineBounded applies the three acceptance proofs to one go
// statement.
func goroutineBounded(pass *Pass, fd *ast.FuncDecl, gs *ast.GoStmt, waits map[string]bool) bool {
	adds := wgAddIDsBefore(pass.Pkg, fd, gs.Pos())

	// Spawned function literal: prove on the body directly.
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if ctxBoundedBody(pass.Pkg, lit.Body) {
			return true
		}
		for _, done := range wgDoneIDs(pass.Pkg, lit.Body) {
			if adds[done] && waits[done] {
				return true
			}
		}
		return channelJoined(pass.Pkg, fd, gs, lit.Body)
	}

	// Spawned named function or method: prove through its summary facts.
	for _, id := range calleeIDsOf(pass, gs.Call) {
		facts := pass.Facts.Get(id)
		if facts == nil {
			continue
		}
		if facts.CtxBounded {
			return true
		}
		for _, done := range facts.WgDones {
			if adds[done] && waits[done] {
				return true
			}
		}
	}
	return false
}

// calleeIDsOf resolves the call's callees, CHA-expanded when the graph is
// available.
func calleeIDsOf(pass *Pass, call *ast.CallExpr) []FuncID {
	if pass.Graph != nil {
		return pass.Graph.CalleeIDs(pass.Pkg.Info, call)
	}
	if id := funcID(calleeFunc(pass.Pkg.Info, call)); id != "" {
		return []FuncID{id}
	}
	return nil
}

// wgAddIDsBefore collects the WaitGroups Add()ed before pos in the
// function — the half of the join contract the spawner holds.
func wgAddIDsBefore(pkg *Package, fd *ast.FuncDecl, pos token.Pos) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" || !isWaitGroup(pkg.Info.TypeOf(sel.X)) {
			return true
		}
		if id := syncObjID(pkg, sel.X); id != "" {
			out[id] = true
		}
		return true
	})
	return out
}

// channelJoined proves the channel-handshake pattern: the goroutine's body
// closes or sends on a channel object, and the spawning function receives
// from that same object after the spawn (directly, in a select, or by
// ranging it).
func channelJoined(pkg *Package, fd *ast.FuncDecl, gs *ast.GoStmt, body *ast.BlockStmt) bool {
	signaled := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if id := syncObjID(pkg, n.Chan); id != "" {
				signaled[id] = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if cid := syncObjID(pkg, n.Args[0]); cid != "" {
					signaled[cid] = true
				}
			}
		}
		return true
	})
	if len(signaled) == 0 {
		return false
	}
	joined := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && n.Pos() > gs.End() {
				if id := syncObjID(pkg, n.X); id != "" && signaled[id] {
					joined = true
				}
			}
		case *ast.RangeStmt:
			if n.Pos() > gs.End() {
				if id := syncObjID(pkg, n.X); id != "" && signaled[id] {
					joined = true
				}
			}
		}
		return true
	})
	return joined
}
