// Package bstar implements the B*-tree floorplan representation (Chang et
// al.) used by the paper's 2.5D placement: each tier of the 2.5D
// architecture is packed by one B*-tree, and the placer perturbs the forest
// with intra-/inter-tree node moves and swaps (Section III-C2).
//
// A B*-tree node's left child abuts its parent on the +x side; a right
// child sits at the parent's x. The y coordinate is resolved with a
// contour (horizon) structure, yielding an admissible compacted packing in
// amortized linear time per pack.
package bstar

import (
	"fmt"
	"math/rand"
)

// Block is one rectangle to be packed. W and H are its extents along the
// tier plane's two axes; X and Y are set by Pack.
type Block struct {
	W, H int
	X, Y int
}

type node struct {
	parent, left, right int // node indices, -1 for none
	block               int // index into the shared block slice
}

// Tree packs a subset of blocks on one tier.
type Tree struct {
	blocks []*Block // shared storage, indexed by node.block
	nodes  []node
	root   int
	// free recycles node slots after removal.
	free []int
	// lastInsert remembers the node allocated by the latest Insert.
	lastInsert int
}

// NewTree builds a tree over the given blocks (by index into blocks),
// arranged as a complete binary tree, which spreads the initial packing.
func NewTree(blocks []*Block, members []int) *Tree {
	t := &Tree{blocks: blocks, root: -1}
	for i, b := range members {
		n := node{parent: -1, left: -1, right: -1, block: b}
		if i > 0 {
			n.parent = (i - 1) / 2
		}
		t.nodes = append(t.nodes, n)
	}
	for i := range t.nodes {
		if i == 0 {
			t.root = 0
			continue
		}
		p := (i - 1) / 2
		if i == 2*p+1 {
			t.nodes[p].left = i
		} else {
			t.nodes[p].right = i
		}
	}
	if len(t.nodes) == 0 {
		t.root = -1
	}
	return t
}

// Len returns the number of packed blocks.
func (t *Tree) Len() int { return len(t.nodes) - len(t.free) }

// Blocks returns the block indices currently in the tree.
func (t *Tree) Blocks() []int {
	var out []int
	t.walk(t.root, func(n int) { out = append(out, t.nodes[n].block) })
	return out
}

func (t *Tree) walk(n int, f func(int)) {
	if n < 0 {
		return
	}
	f(n)
	t.walk(t.nodes[n].left, f)
	t.walk(t.nodes[n].right, f)
}

// Pack computes X/Y for every block in the tree and returns the bounding
// extents (W along x, H along y). An empty tree packs to (0, 0).
func (t *Tree) Pack() (w, h int) {
	if t.root < 0 {
		return 0, 0
	}
	horizon := make([]int, 0, 64)
	maxAt := func(x0, x1 int) int {
		m := 0
		for x := x0; x < x1 && x < len(horizon); x++ {
			if horizon[x] > m {
				m = horizon[x]
			}
		}
		return m
	}
	raise := func(x0, x1, y int) {
		for len(horizon) < x1 {
			horizon = append(horizon, 0)
		}
		for x := x0; x < x1; x++ {
			horizon[x] = y
		}
	}
	var place func(n, x int)
	place = func(n, x int) {
		b := t.blocks[t.nodes[n].block]
		y := maxAt(x, x+b.W)
		b.X, b.Y = x, y
		raise(x, x+b.W, y+b.H)
		if b.X+b.W > w {
			w = b.X + b.W
		}
		if y+b.H > h {
			h = y + b.H
		}
		if l := t.nodes[n].left; l >= 0 {
			place(l, x+b.W)
		}
		if r := t.nodes[n].right; r >= 0 {
			place(r, x)
		}
	}
	place(t.root, 0)
	return w, h
}

// RandomNode returns a uniformly random live node index, or -1 if empty.
func (t *Tree) RandomNode(rng *rand.Rand) int {
	if t.Len() == 0 {
		return -1
	}
	var live []int
	t.walk(t.root, func(n int) { live = append(live, n) })
	return live[rng.Intn(len(live))]
}

// BlockAt returns the block index stored at node n.
func (t *Tree) BlockAt(n int) int { return t.nodes[n].block }

// SwapBlocks exchanges the blocks stored at two nodes (intra-tree swap).
func (t *Tree) SwapBlocks(a, b int) {
	t.nodes[a].block, t.nodes[b].block = t.nodes[b].block, t.nodes[a].block
}

// SwapBlocksAcross exchanges blocks between a node of t and a node of o
// (inter-tree swap).
func SwapBlocksAcross(t *Tree, a int, o *Tree, b int) {
	t.nodes[a].block, o.nodes[b].block = o.nodes[b].block, t.nodes[a].block
}

// Remove detaches node n and returns its block index. Interior nodes are
// first swapped down to a leaf (the standard B*-tree deletion used in SA
// floorplanning, which perturbs the packing but keeps the tree valid).
func (t *Tree) Remove(n int) int {
	// Bubble n down to a leaf by swapping block payloads.
	for t.nodes[n].left >= 0 || t.nodes[n].right >= 0 {
		c := t.nodes[n].left
		if c < 0 {
			c = t.nodes[n].right
		}
		t.SwapBlocks(n, c)
		n = c
	}
	b := t.nodes[n].block
	p := t.nodes[n].parent
	if p >= 0 {
		if t.nodes[p].left == n {
			t.nodes[p].left = -1
		} else {
			t.nodes[p].right = -1
		}
	} else {
		t.root = -1
	}
	t.nodes[n] = node{parent: -1, left: -1, right: -1, block: -1}
	t.free = append(t.free, n)
	return b
}

// Insert adds block b as the left (asLeft) or right child of node p; the
// displaced child, if any, is pushed down as the same-side child of the new
// node. With p < 0 the block becomes the root (only valid when empty).
func (t *Tree) Insert(b, p int, asLeft bool) error {
	n := t.alloc(b)
	if p < 0 {
		if t.root >= 0 {
			return fmt.Errorf("bstar: inserting second root")
		}
		t.root = n
		return nil
	}
	if p >= len(t.nodes) || t.nodes[p].block < 0 {
		return fmt.Errorf("bstar: parent %d not live", p)
	}
	t.nodes[n].parent = p
	if asLeft {
		old := t.nodes[p].left
		t.nodes[p].left = n
		t.nodes[n].left = old
		if old >= 0 {
			t.nodes[old].parent = n
		}
	} else {
		old := t.nodes[p].right
		t.nodes[p].right = n
		t.nodes[n].right = old
		if old >= 0 {
			t.nodes[old].parent = n
		}
	}
	return nil
}

func (t *Tree) alloc(b int) int {
	if len(t.free) > 0 {
		n := t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
		t.nodes[n] = node{parent: -1, left: -1, right: -1, block: b}
		t.lastInsert = n
		return n
	}
	t.nodes = append(t.nodes, node{parent: -1, left: -1, right: -1, block: b})
	t.lastInsert = len(t.nodes) - 1
	return t.lastInsert
}

// NodeOfLastInsert returns the node index allocated by the most recent
// Insert call.
func (t *Tree) NodeOfLastInsert() int { return t.lastInsert }

// CloneInto returns a deep copy of the tree's topology sharing the given
// block storage (block coordinates are recomputed on every Pack, so only
// structure needs copying).
func (t *Tree) CloneInto(blocks []*Block) *Tree {
	return &Tree{
		blocks: blocks,
		nodes:  append([]node(nil), t.nodes...),
		root:   t.root,
		free:   append([]int(nil), t.free...),
	}
}

// Validate checks tree structure invariants (parent/child symmetry, single
// root, no cycles, block indices live).
func (t *Tree) Validate() error {
	seen := map[int]bool{}
	count := 0
	var walk func(n, parent int) error
	walk = func(n, parent int) error {
		if n < 0 {
			return nil
		}
		if seen[n] {
			return fmt.Errorf("bstar: node %d visited twice (cycle)", n)
		}
		seen[n] = true
		count++
		if t.nodes[n].parent != parent {
			return fmt.Errorf("bstar: node %d parent %d want %d", n, t.nodes[n].parent, parent)
		}
		if t.nodes[n].block < 0 {
			return fmt.Errorf("bstar: node %d has no block", n)
		}
		if err := walk(t.nodes[n].left, n); err != nil {
			return err
		}
		return walk(t.nodes[n].right, n)
	}
	if err := walk(t.root, -1); err != nil {
		return err
	}
	if count != t.Len() {
		return fmt.Errorf("bstar: %d reachable nodes, %d live", count, t.Len())
	}
	return nil
}
