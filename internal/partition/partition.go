// Package partition splits a decomposed circuit along its qubit-interaction
// graph into sub-circuits small enough to compile independently, plus an
// explicit seam list of the cut CNOTs that couple them. The decomposed gate
// set contains exactly one two-qubit gate kind (CNOT — see package
// decompose), so inter-partition coupling is carried entirely by CNOT nets:
// every gate either lives wholly inside one part or is a seam.
//
// The cut is a greedy min-cut: parts grow one qubit at a time, always
// absorbing the unassigned qubit with the strongest CNOT attraction to the
// part so far, so heavily-interacting qubits end up on the same side and
// the number of cut CNOTs stays small. The partitioner is deterministic for
// a fixed (circuit, Options) pair — ties are broken by a seeded PRNG, never
// by map order — which is what lets partitioned compiles be content
// addressed and reproduced bit-identically.
package partition

import (
	"fmt"
	"math/rand"

	"repro/internal/faults"
	"repro/internal/qc"
)

// Options configures the partitioner.
type Options struct {
	// MaxQubitsPerPart caps the qubit count of each sub-circuit. A
	// non-positive cap (or a circuit already at or below it) selects
	// pass-through mode: one part holding the whole circuit, no seams.
	MaxQubitsPerPart int
	// Seed drives deterministic tie-breaking among equally attractive
	// growth candidates. Two runs with equal seeds produce identical
	// partitions.
	Seed int64
}

// Part is one sub-circuit of the partition.
type Part struct {
	// Circuit is the sub-circuit over local qubit indices 0..len(Qubits)-1.
	Circuit *qc.Circuit
	// Qubits maps local qubit index to the source circuit's qubit index,
	// in ascending source order.
	Qubits []int
	// GateIdx lists the source positions of this part's gates, ascending;
	// Circuit.Gates[i] is the remapped form of the source gate GateIdx[i].
	GateIdx []int
}

// Seam is one cut CNOT: a gate whose control and target landed in
// different parts.
type Seam struct {
	// Index is the gate's position in the source circuit.
	Index int
	// Gate is the cut CNOT in source qubit indices.
	Gate qc.Gate
	// ControlPart and TargetPart are the parts owning each endpoint.
	ControlPart, TargetPart int
}

// Result is a partition of a decomposed circuit: parts ∪ seams cover every
// source gate exactly once.
type Result struct {
	// Parts are the sub-circuits, in deterministic construction order.
	Parts []Part
	// Seams are the cut CNOTs, in source order.
	Seams []Seam
	// QubitPart maps each source qubit to its part.
	QubitPart []int
	// CutWeight is the number of cut CNOTs (== len(Seams)).
	CutWeight int
	// PassThrough marks the below-threshold mode: one part, no seams.
	PassThrough bool
}

// Partition splits a decomposed circuit. The input must already be lowered
// to the decomposed gate set: at most two distinct qubits per gate, and
// every two-qubit gate a CNOT (run package decompose first).
func Partition(c *qc.Circuit, opts Options) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("partition: input invalid: %w", err)
	}
	for i, g := range c.Gates {
		q := g.Qubits()
		if len(q) > 2 {
			return nil, fmt.Errorf("partition: gate %d (%v) touches %d qubits; input must be decomposed", i, g, len(q))
		}
		if len(q) == 2 && g.Kind != qc.GateCNOT {
			return nil, fmt.Errorf("partition: gate %d (%v) is a non-CNOT two-qubit gate; input must be decomposed", i, g)
		}
	}
	n := c.NumQubits()
	if opts.MaxQubitsPerPart <= 0 || n <= opts.MaxQubitsPerPart {
		return passThrough(c)
	}
	qubitPart := assignQubits(c, n, opts)
	return assemble(c, qubitPart, false)
}

// passThrough wraps the whole circuit as a single part with no seams.
func passThrough(c *qc.Circuit) (*Result, error) {
	part := make([]int, c.NumQubits())
	res, err := assemble(c, part, true)
	if err != nil {
		// assemble cannot fail on the identity assignment; if it does,
		// surface it as the invariant violation it is.
		return nil, fmt.Errorf("partition: pass-through assembly failed: %w: %v", faults.ErrInvariant, err)
	}
	return res, nil
}

// assignQubits runs the greedy min-cut growth and returns the qubit→part
// assignment.
func assignQubits(c *qc.Circuit, n int, opts Options) []int {
	// CNOT adjacency: weight[u][v] counts CNOTs between u and v; deg[u]
	// is u's total interaction weight.
	weight := make([]map[int]int, n)
	for i := range weight {
		weight[i] = map[int]int{}
	}
	deg := make([]int, n)
	for _, g := range c.Gates {
		q := g.Qubits()
		if len(q) != 2 {
			continue
		}
		u, v := q[0], q[1]
		weight[u][v]++
		weight[v][u]++
		deg[u]++
		deg[v]++
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	qubitPart := make([]int, n)
	for i := range qubitPart {
		qubitPart[i] = -1
	}
	unassigned := n
	for partID := 0; unassigned > 0; partID++ {
		// Seed the part with the highest-degree unassigned qubit, so
		// growth starts inside a dense interaction cluster.
		seed := pickBest(n, rng, func(q int) (int, int, bool) {
			if qubitPart[q] >= 0 {
				return 0, 0, false
			}
			return deg[q], 0, true
		})
		// attraction[q] is the CNOT weight between q and the part so far.
		attraction := make([]int, n)
		grow := func(q int) {
			qubitPart[q] = partID
			unassigned--
			for v, w := range weight[q] {
				attraction[v] += w
			}
		}
		grow(seed)
		for size := 1; size < opts.MaxQubitsPerPart && unassigned > 0; size++ {
			// Absorb the most attracted unassigned qubit. A qubit with no
			// attraction still joins (tie broken toward higher residual
			// degree, then by PRNG): it adds nothing to the cut, and
			// packing parts full keeps the part count at ⌈n/cap⌉.
			next := pickBest(n, rng, func(q int) (int, int, bool) {
				if qubitPart[q] >= 0 {
					return 0, 0, false
				}
				return attraction[q], deg[q], true
			})
			grow(next)
		}
	}
	return qubitPart
}

// pickBest returns the eligible qubit with the lexicographically maximum
// (primary, secondary) score, breaking exact ties uniformly with the PRNG
// (reservoir sampling), so the choice depends only on the seed — never on
// map iteration order.
func pickBest(n int, rng *rand.Rand, score func(q int) (primary, secondary int, ok bool)) int {
	best, bestP, bestS, ties := -1, 0, 0, 0
	for q := 0; q < n; q++ {
		p, s, ok := score(q)
		if !ok {
			continue
		}
		switch {
		case best < 0 || p > bestP || (p == bestP && s > bestS):
			best, bestP, bestS, ties = q, p, s, 1
		case p == bestP && s == bestS:
			ties++
			if rng.Intn(ties) == 0 {
				best = q
			}
		}
	}
	return best
}

// assemble splits the gates by the qubit assignment and builds the local
// sub-circuits.
func assemble(c *qc.Circuit, qubitPart []int, passThrough bool) (*Result, error) {
	nParts := 0
	for _, p := range qubitPart {
		if p+1 > nParts {
			nParts = p + 1
		}
	}
	res := &Result{
		QubitPart:   qubitPart,
		Parts:       make([]Part, nParts),
		PassThrough: passThrough,
	}
	// Local index maps, qubit lists in ascending source order.
	toLocal := make([]map[int]int, nParts)
	for p := range res.Parts {
		toLocal[p] = map[int]int{}
		for q, owner := range qubitPart {
			if owner == p {
				toLocal[p][q] = len(res.Parts[p].Qubits)
				res.Parts[p].Qubits = append(res.Parts[p].Qubits, q)
			}
		}
		names := make([]string, len(res.Parts[p].Qubits))
		for local, q := range res.Parts[p].Qubits {
			names[local] = c.Qubits[q]
		}
		res.Parts[p].Circuit = &qc.Circuit{
			Name:   fmt.Sprintf("%s/part%d", c.Name, p),
			Qubits: names,
		}
	}

	remap := func(p int, idx []int) []int {
		if len(idx) == 0 {
			return nil
		}
		out := make([]int, len(idx))
		for i, q := range idx {
			out[i] = toLocal[p][q]
		}
		return out
	}
	for i, g := range c.Gates {
		q := g.Qubits()
		p := qubitPart[q[0]]
		if len(q) == 2 && qubitPart[q[1]] != p {
			res.Seams = append(res.Seams, Seam{
				Index:       i,
				Gate:        g,
				ControlPart: qubitPart[g.Controls[0]],
				TargetPart:  qubitPart[g.Targets[0]],
			})
			continue
		}
		res.Parts[p].GateIdx = append(res.Parts[p].GateIdx, i)
		res.Parts[p].Circuit.Gates = append(res.Parts[p].Circuit.Gates, qc.Gate{
			Kind:     g.Kind,
			Controls: remap(p, g.Controls),
			Targets:  remap(p, g.Targets),
		})
	}
	res.CutWeight = len(res.Seams)
	for p := range res.Parts {
		if err := res.Parts[p].Circuit.Validate(); err != nil {
			return nil, fmt.Errorf("partition: part %d invalid: %w", p, err)
		}
	}
	return res, nil
}

// Reassemble rebuilds the source circuit from the parts and seams by source
// gate position. The output is gate-for-gate identical to the circuit the
// partition was built from — the property Verify checks — so partitioning
// loses nothing: stitching the parts back together in source order is the
// original computation.
func (r *Result) Reassemble(c *qc.Circuit) (*qc.Circuit, error) {
	out := &qc.Circuit{
		Name:   c.Name,
		Qubits: append([]string(nil), c.Qubits...),
		Gates:  make([]qc.Gate, len(c.Gates)),
	}
	seen := make([]bool, len(c.Gates))
	place := func(idx int, g qc.Gate, from string) error {
		if idx < 0 || idx >= len(c.Gates) {
			return fmt.Errorf("partition: %s references gate %d outside the source circuit", from, idx)
		}
		if seen[idx] {
			return fmt.Errorf("partition: gate %d covered twice (%s)", idx, from)
		}
		seen[idx] = true
		out.Gates[idx] = g
		return nil
	}
	for p := range r.Parts {
		part := &r.Parts[p]
		if len(part.GateIdx) != len(part.Circuit.Gates) {
			return nil, fmt.Errorf("partition: part %d has %d gate indices for %d gates", p, len(part.GateIdx), len(part.Circuit.Gates))
		}
		for i, idx := range part.GateIdx {
			g := part.Circuit.Gates[i]
			back := func(local []int) []int {
				if len(local) == 0 {
					return nil
				}
				out := make([]int, len(local))
				for j, l := range local {
					out[j] = part.Qubits[l]
				}
				return out
			}
			if err := place(idx, qc.Gate{Kind: g.Kind, Controls: back(g.Controls), Targets: back(g.Targets)}, fmt.Sprintf("part %d", p)); err != nil {
				return nil, err
			}
		}
	}
	for _, s := range r.Seams {
		if err := place(s.Index, s.Gate, "seam"); err != nil {
			return nil, err
		}
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("partition: gate %d (%v) covered by neither part nor seam", i, c.Gates[i])
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("partition: reassembled circuit invalid: %w", err)
	}
	return out, nil
}

// Verify checks the partition against its source circuit: parts ∪ seams
// cover every gate exactly once and reassemble to the exact source gates,
// qubit ownership is consistent, and no part exceeds the cap.
func (r *Result) Verify(c *qc.Circuit, opts Options) error {
	if len(r.QubitPart) != c.NumQubits() {
		return fmt.Errorf("partition: qubit map covers %d of %d qubits", len(r.QubitPart), c.NumQubits())
	}
	for q, p := range r.QubitPart {
		if p < 0 || p >= len(r.Parts) {
			return fmt.Errorf("partition: qubit %d assigned to nonexistent part %d", q, p)
		}
	}
	for p := range r.Parts {
		part := &r.Parts[p]
		if !r.PassThrough && opts.MaxQubitsPerPart > 0 && len(part.Qubits) > opts.MaxQubitsPerPart {
			return fmt.Errorf("partition: part %d holds %d qubits, cap %d", p, len(part.Qubits), opts.MaxQubitsPerPart)
		}
		for local, q := range part.Qubits {
			if q < 0 || q >= c.NumQubits() || r.QubitPart[q] != p {
				return fmt.Errorf("partition: part %d local qubit %d maps to %d, owned by part %d", p, local, q, r.QubitPart[q])
			}
		}
	}
	for _, s := range r.Seams {
		if s.Gate.Kind != qc.GateCNOT {
			return fmt.Errorf("partition: seam at gate %d is %v, want a CNOT", s.Index, s.Gate)
		}
		if s.ControlPart == s.TargetPart {
			return fmt.Errorf("partition: seam at gate %d does not cross parts", s.Index)
		}
	}
	back, err := r.Reassemble(c)
	if err != nil {
		return err
	}
	for i := range c.Gates {
		if !sameGate(c.Gates[i], back.Gates[i]) {
			return fmt.Errorf("partition: gate %d reassembles to %v, want %v", i, back.Gates[i], c.Gates[i])
		}
	}
	if r.CutWeight != len(r.Seams) {
		return fmt.Errorf("partition: cut weight %d != %d seams", r.CutWeight, len(r.Seams))
	}
	return nil
}

// sameGate compares two gates structurally, order-sensitively.
func sameGate(a, b qc.Gate) bool {
	if a.Kind != b.Kind || len(a.Controls) != len(b.Controls) || len(a.Targets) != len(b.Targets) {
		return false
	}
	for i := range a.Controls {
		if a.Controls[i] != b.Controls[i] {
			return false
		}
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			return false
		}
	}
	return true
}

// Stats summarizes a partition for logs and bench artifacts.
func (r *Result) Stats() (parts, seams, largest int) {
	for p := range r.Parts {
		if n := len(r.Parts[p].Qubits); n > largest {
			largest = n
		}
	}
	return len(r.Parts), len(r.Seams), largest
}
