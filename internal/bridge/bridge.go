// Package bridge implements the paper's core contribution: the iterative
// bridging algorithm (Algorithm 1, Section III-B) that merges dual loops
// into bridge structures along continuous common segments, plus the
// post-bridging generation of dual-defect nets.
//
// A bridge may be added between two disjoint same-type defect structures
// and merges them along one continuous common segment — the segments of the
// two structures passing through the same modules in the same order. Each
// loop maintains a set of chains (pin sequences); initially every
// penetrated module contributes a two-pin chain. Merging loop l_e into
// bridge structure b:
//
//  1. builds the bridge graph G_{b,l_e}: vertices are the pins of the
//     common modules (one representative dual segment per module) plus the
//     endpoint pins shared by chains of different loops in b; edges connect
//     endpoints of different chains within a loop (possible new
//     connections) and consecutive pins within a chain (existing
//     connections);
//  2. fixes a connecting order of the critical vertices (the common-module
//     pins, visited pairwise consecutively);
//  3. searches a simple path through G visiting the critical vertices in
//     order; and
//  4. accepts the path only if it preserves the reconstructability of every
//     loop in b (no chain is closed into a premature cycle).
//
// On success the path becomes the continuous common segment: chains of b's
// loops along it are joined, the path becomes a chain of l_e, and l_e's own
// dual segments in the common modules are removed (the compression).
package bridge

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/modular"
)

// Chain is a pin sequence owned by one loop. Pins may be shared with
// chains of other loops after bridging (common segments).
type Chain struct {
	Pins []int
}

func (c *Chain) head() int { return c.Pins[0] }
func (c *Chain) tail() int { return c.Pins[len(c.Pins)-1] }

// Structure is one bridge structure: a set of merged loops.
type Structure struct {
	ID    int
	Loops []int
	// RepSeg maps each penetrated module to the representative dual
	// segment shared there.
	RepSeg map[int]int
}

// Net is one dual-defect net to be routed between two pins.
type Net struct {
	ID   int
	PinA int
	PinB int
	Loop int // owning dual loop
}

// Result carries the outcome of iterative bridging.
type Result struct {
	NL         *modular.Netlist
	Structures []Structure
	// Chains holds each loop's final chain set.
	Chains [][]*Chain
	Nets   []Net
	// Merges counts successful bridge additions.
	Merges int
	// RemovedSegments counts dual segments eliminated by sharing.
	RemovedSegments int
}

// maxCommonModules caps the exhaustive critical-vertex ordering search;
// merges with more common modules than this are rejected (they essentially
// never occur in practice).
const maxCommonModules = 8

// Run executes Algorithm 1 on the netlist. When enabled is false it skips
// all merging and only generates the unbridged nets (the "w/o bridging"
// ablation of Table V).
func Run(nl *modular.Netlist, enabled bool) (*Result, error) {
	//lint:ignore ctxflow sanctioned no-context entry point; RunContext is the threaded variant
	return RunContext(context.Background(), nl, enabled)
}

// RunContext is Run with cooperative cancellation: the iterative merging
// loop polls ctx between merge candidates and aborts with an error
// wrapping faults.ErrCanceled.
func RunContext(ctx context.Context, nl *modular.Netlist, enabled bool) (*Result, error) {
	if err := faults.Canceled(ctx); err != nil {
		return nil, fmt.Errorf("bridge: %w", err)
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("bridge: %w", err)
	}
	r := &Result{NL: nl, Chains: make([][]*Chain, len(nl.Loops))}
	// Initial chains: one two-pin chain per penetrated module.
	for i, l := range nl.Loops {
		for _, segID := range l.Segments {
			s := nl.Segments[segID]
			r.Chains[i] = append(r.Chains[i], &Chain{Pins: []int{s.Pins[0], s.Pins[1]}})
		}
	}

	if enabled {
		if err := r.runIterativeBridging(ctx); err != nil {
			return nil, err
		}
	} else {
		// Each loop is its own singleton structure.
		for i := range nl.Loops {
			st := Structure{ID: len(r.Structures), Loops: []int{i}, RepSeg: map[int]int{}}
			for k, m := range nl.Loops[i].Modules {
				st.RepSeg[m] = nl.Loops[i].Segments[k]
			}
			r.Structures = append(r.Structures, st)
		}
	}
	r.generateNets()
	return r, nil
}

// loopPQ is the max-priority queue of candidate loops keyed by the number
// of common modules with the current bridge structure.
type loopPQ struct {
	items []pqItem
	pos   map[int]int // loop -> index in items
}

type pqItem struct {
	loop int
	key  int
}

func (q *loopPQ) Len() int { return len(q.items) }
func (q *loopPQ) Less(i, j int) bool {
	if q.items[i].key != q.items[j].key {
		return q.items[i].key > q.items[j].key
	}
	return q.items[i].loop < q.items[j].loop
}
func (q *loopPQ) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.pos[q.items[i].loop] = i
	q.pos[q.items[j].loop] = j
}
func (q *loopPQ) Push(x any) {
	it := x.(pqItem)
	q.pos[it.loop] = len(q.items)
	q.items = append(q.items, it)
}
func (q *loopPQ) Pop() any {
	it := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	delete(q.pos, it.loop)
	return it
}

// runIterativeBridging is Algorithm 1. The context is polled between
// merge candidates so cancellation aborts within one tryMerge.
func (r *Result) runIterativeBridging(ctx context.Context) error {
	nl := r.NL
	processed := make([]bool, len(nl.Loops))
	relatives := nl.RelativeLoops()

	for seed := range nl.Loops {
		if err := faults.Canceled(ctx); err != nil {
			return fmt.Errorf("bridge: %w", err)
		}
		if processed[seed] {
			continue
		}
		// Initialize bridge structure b with the seed loop (line 4).
		st := Structure{ID: len(r.Structures), Loops: []int{seed}, RepSeg: map[int]int{}}
		for k, m := range nl.Loops[seed].Modules {
			st.RepSeg[m] = nl.Loops[seed].Segments[k]
		}
		processed[seed] = true

		// Push unprocessed relatives keyed by common-module count (lines 5-6).
		q := &loopPQ{pos: map[int]int{}}
		rejected := map[int]bool{}
		for _, rel := range relatives[seed] {
			if !processed[rel] {
				heap.Push(q, pqItem{loop: rel, key: r.commonModuleCount(&st, rel)})
			}
		}

		for q.Len() > 0 {
			if err := faults.Canceled(ctx); err != nil {
				return fmt.Errorf("bridge: %w", err)
			}
			le := heap.Pop(q).(pqItem).loop
			if processed[le] || rejected[le] {
				continue
			}
			if r.tryMerge(&st, le) {
				processed[le] = true
				r.Merges++
				// Push l_e's unprocessed relatives (line 15) and refresh
				// keys of queued loops (line 16).
				for _, rel := range relatives[le] {
					if !processed[rel] && !rejected[rel] {
						if _, in := q.pos[rel]; !in {
							heap.Push(q, pqItem{loop: rel, key: r.commonModuleCount(&st, rel)})
						}
					}
				}
				for i := range q.items {
					q.items[i].key = r.commonModuleCount(&st, q.items[i].loop)
				}
				heap.Init(q)
			} else {
				// A failed candidate is never re-queued this iteration
				// (Section III-B).
				rejected[le] = true
			}
		}
		r.Structures = append(r.Structures, st)
	}
	return nil
}

// commonModuleCount returns |modules(b) ∩ modules(le)|.
func (r *Result) commonModuleCount(st *Structure, le int) int {
	n := 0
	for _, m := range r.NL.Loops[le].Modules {
		if _, ok := st.RepSeg[m]; ok {
			n++
		}
	}
	return n
}

// commonModules returns modules(b) ∩ modules(le) in le's ring order.
func (r *Result) commonModules(st *Structure, le int) []int {
	var out []int
	for _, m := range r.NL.Loops[le].Modules {
		if _, ok := st.RepSeg[m]; ok {
			out = append(out, m)
		}
	}
	return out
}

// tryMerge attempts to merge loop le into structure st: bridge graph
// construction, critical-vertex ordering, path search, reconstructability
// check, and chain update (lines 10-17 of Algorithm 1).
func (r *Result) tryMerge(st *Structure, le int) bool {
	common := r.commonModules(st, le)
	if len(common) == 0 || len(common) > maxCommonModules {
		return false
	}
	g := r.buildBridgeGraph(st, common)
	path := r.findCriticalPath(g, st, common)
	if path == nil {
		return false
	}
	r.applyMerge(st, le, common, path)
	return true
}

// bridgeGraph is G_{b,l_e}.
type bridgeGraph struct {
	vertices map[int]bool
	adj      map[int][]int
	// consecutive marks existing chain edges (unordered pin pairs).
	consecutive map[[2]int]bool
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// buildBridgeGraph constructs vertices and edges per Section III-B.
func (r *Result) buildBridgeGraph(st *Structure, common []int) *bridgeGraph {
	nl := r.NL
	g := &bridgeGraph{
		vertices:    map[int]bool{},
		adj:         map[int][]int{},
		consecutive: map[[2]int]bool{},
	}
	// Vertex rule 1: pins of the representative segment of each common
	// module.
	for _, m := range common {
		seg := nl.Segments[st.RepSeg[m]]
		g.vertices[seg.Pins[0]] = true
		g.vertices[seg.Pins[1]] = true
	}
	// Vertex rule 2: endpoint pins shared by chains of different loops in
	// b. Collect endpoint usage across b's loops.
	usage := map[int]map[int]bool{} // pin -> set of loops having it as a chain endpoint
	for _, lp := range st.Loops {
		for _, c := range r.Chains[lp] {
			for _, p := range []int{c.head(), c.tail()} {
				if usage[p] == nil {
					usage[p] = map[int]bool{}
				}
				usage[p][lp] = true
			}
		}
	}
	for p, loops := range usage {
		if len(loops) >= 2 {
			g.vertices[p] = true
		}
	}

	addEdge := func(u, v int) {
		if u == v {
			return
		}
		k := pairKey(u, v)
		if g.consecutive[k] {
			return
		}
		for _, w := range g.adj[u] {
			if w == v {
				return
			}
		}
		g.adj[u] = append(g.adj[u], v)
		g.adj[v] = append(g.adj[v], u)
	}

	for _, lp := range st.Loops {
		chains := r.Chains[lp]
		// Edge rule 2: consecutive pins within a chain, both vertices.
		for _, c := range chains {
			for i := 1; i < len(c.Pins); i++ {
				u, v := c.Pins[i-1], c.Pins[i]
				if g.vertices[u] && g.vertices[v] {
					g.consecutive[pairKey(u, v)] = true
					g.adj[u] = append(g.adj[u], v)
					g.adj[v] = append(g.adj[v], u)
				}
			}
		}
		// Edge rule 1: endpoints of different chains within the loop.
		for i := 0; i < len(chains); i++ {
			for j := i + 1; j < len(chains); j++ {
				for _, u := range []int{chains[i].head(), chains[i].tail()} {
					for _, v := range []int{chains[j].head(), chains[j].tail()} {
						if g.vertices[u] && g.vertices[v] {
							addEdge(u, v)
						}
					}
				}
			}
		}
	}
	// Deduplicate adjacency lists (rule 1 and rule 2 may both add).
	for u := range g.adj {
		seen := map[int]bool{}
		kept := g.adj[u][:0]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				kept = append(kept, v)
			}
		}
		g.adj[u] = kept
	}
	return g
}

// findCriticalPath searches a simple path visiting the critical vertices
// (the representative pin pairs of the common modules) pairwise in order.
// It tries module orderings (all permutations for ≤4 common modules,
// otherwise the ring order and its reverse) and both pin directions per
// module, returning the first valid path.
func (r *Result) findCriticalPath(g *bridgeGraph, st *Structure, common []int) []int {
	orders := moduleOrders(common)
	nl := r.NL
	for _, order := range orders {
		// Pin direction choices per module: iterate 2^k bitmasks.
		k := len(order)
		for mask := 0; mask < 1<<k; mask++ {
			var criticals []int
			for i, m := range order {
				seg := nl.Segments[st.RepSeg[m]]
				a, b := seg.Pins[0], seg.Pins[1]
				if mask&(1<<i) != 0 {
					a, b = b, a
				}
				criticals = append(criticals, a, b)
			}
			if path := searchPath(g, criticals); path != nil {
				if r.pathValid(st, path) {
					return path
				}
			}
		}
	}
	return nil
}

// moduleOrders enumerates candidate connecting orders of the common
// modules.
func moduleOrders(common []int) [][]int {
	if len(common) <= 1 {
		return [][]int{append([]int(nil), common...)}
	}
	if len(common) <= 4 {
		return permutations(common)
	}
	fwd := append([]int(nil), common...)
	rev := make([]int, len(common))
	for i, m := range common {
		rev[len(common)-1-i] = m
	}
	return [][]int{fwd, rev}
}

func permutations(xs []int) [][]int {
	var out [][]int
	var rec func(cur []int, rest []int)
	rec = func(cur, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := range rest {
			next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			rec(append(cur, rest[i]), next)
		}
	}
	rec(nil, xs)
	return out
}

// searchPath finds a simple path through g visiting criticals in order;
// non-critical vertices may be interleaved. Returns nil if none exists.
func searchPath(g *bridgeGraph, criticals []int) []int {
	if len(criticals) == 0 {
		return nil
	}
	isCritical := map[int]int{} // vertex -> index in criticals
	for i, c := range criticals {
		if _, dup := isCritical[c]; dup {
			return nil // degenerate: same pin twice in the order
		}
		isCritical[c] = i
	}
	start := criticals[0]
	if !g.vertices[start] {
		return nil
	}
	visited := map[int]bool{start: true}
	path := []int{start}
	var dfs func(v, nextIdx int) bool
	dfs = func(v, nextIdx int) bool {
		if nextIdx == len(criticals) {
			return true
		}
		for _, w := range g.adj[v] {
			if visited[w] {
				continue
			}
			if ci, crit := isCritical[w]; crit {
				if ci != nextIdx {
					continue // critical vertex out of order
				}
				visited[w] = true
				path = append(path, w)
				if dfs(w, nextIdx+1) {
					return true
				}
				path = path[:len(path)-1]
				delete(visited, w)
			} else {
				visited[w] = true
				path = append(path, w)
				if dfs(w, nextIdx) {
					return true
				}
				path = path[:len(path)-1]
				delete(visited, w)
			}
		}
		return false
	}
	if !dfs(start, 1) {
		return nil
	}
	return append([]int(nil), path...)
}

// pathValid checks that applying the path's new connections preserves the
// reconstructability of every loop in b. It simulates, on cloned chain
// lists, exactly the joins applyMerge would perform — the same selection
// rule, applied to the evolving (not the pre-path) chain state — and
// rejects the path if any implied join would close a chain into a
// premature cycle or revisit a pin. Validating against a snapshot of the
// endpoints instead used to diverge from applyMerge whenever chains
// shared endpoints or a path vertex was consumed by an earlier join.
func (r *Result) pathValid(st *Structure, path []int) bool {
	sim := map[int][]*Chain{}
	for _, lp := range st.Loops {
		cl := make([]*Chain, len(r.Chains[lp]))
		for i, c := range r.Chains[lp] {
			cl[i] = &Chain{Pins: append([]int(nil), c.Pins...)}
		}
		sim[lp] = cl
	}
	for i := 1; i < len(path); i++ {
		u, v := path[i-1], path[i]
		for _, lp := range st.Loops {
			chains, ok := joinChains(sim[lp], u, v)
			if !ok {
				return false
			}
			sim[lp] = chains
		}
	}
	return true
}

// applyMerge commits the bridge: joins chains of b's loops along the path,
// installs the path as a chain of le, removes le's own segments in the
// common modules, and extends the structure.
func (r *Result) applyMerge(st *Structure, le int, common []int, path []int) {
	nl := r.NL
	commonSet := map[int]bool{}
	for _, m := range common {
		commonSet[m] = true
	}

	// Join chains of every loop in b along the path's new connections.
	for i := 1; i < len(path); i++ {
		u, v := path[i-1], path[i]
		for _, lp := range st.Loops {
			r.joinChainsAt(lp, u, v)
		}
	}

	// le: drop its chains in common modules, remove those segments, and
	// install the path as its new chain.
	var kept []*Chain
	for _, c := range r.Chains[le] {
		if r.chainModule(c) >= 0 && commonSet[r.chainModule(c)] {
			continue
		}
		kept = append(kept, c)
	}
	for k, m := range nl.Loops[le].Modules {
		if commonSet[m] {
			segID := nl.Loops[le].Segments[k]
			if !nl.Segments[segID].Removed {
				nl.Segments[segID].Removed = true
				r.RemovedSegments++
			}
		}
	}
	r.Chains[le] = append(kept, &Chain{Pins: append([]int(nil), path...)})

	// Extend the structure with le and its non-common modules.
	st.Loops = append(st.Loops, le)
	for k, m := range nl.Loops[le].Modules {
		if _, ok := st.RepSeg[m]; !ok {
			st.RepSeg[m] = nl.Loops[le].Segments[k]
		}
	}
}

// chainModule returns the module of a two-pin initial chain, or -1 for
// longer (already merged) chains.
func (r *Result) chainModule(c *Chain) int {
	if len(c.Pins) != 2 {
		return -1
	}
	s0 := r.NL.Pins[c.Pins[0]].Segment
	s1 := r.NL.Pins[c.Pins[1]].Segment
	if s0 != s1 {
		return -1
	}
	return r.NL.Segments[s0].Module
}

// joinChainsAt joins the two chains of loop lp ending at pins u and v, if
// the connection is new for that loop. Paths are pre-screened by
// pathValid with the same joinChains routine, so an illegal join here
// means the caller skipped validation; the loop's chains are then left
// untouched rather than corrupted.
func (r *Result) joinChainsAt(lp, u, v int) {
	if chains, ok := joinChains(r.Chains[lp], u, v); ok {
		r.Chains[lp] = chains
	}
}

// joinChains applies one new connection (u, v) to a loop's chain list and
// returns the updated list. The connection is a no-op (ok=true, list
// unchanged) when it already exists inside a chain or when the loop does
// not have both u and v as chain endpoints. Otherwise the first pair of
// distinct chains ending at u and v whose concatenation stays a simple
// open path is joined; if every candidate pair would close a cycle or
// revisit a pin — e.g. two chains sharing both endpoints — the join is
// illegal and ok=false, so callers can reject the bridge path instead of
// producing an unreconstructable chain set.
func joinChains(chains []*Chain, u, v int) ([]*Chain, bool) {
	var us, vs []*Chain
	for _, c := range chains {
		// Existing connection inside one chain: nothing to do.
		for i := 1; i < len(c.Pins); i++ {
			if (c.Pins[i-1] == u && c.Pins[i] == v) || (c.Pins[i-1] == v && c.Pins[i] == u) {
				return chains, true
			}
		}
		if c.head() == u || c.tail() == u {
			us = append(us, c)
		}
		if c.head() == v || c.tail() == v {
			vs = append(vs, c)
		}
	}
	if len(us) == 0 || len(vs) == 0 {
		return chains, true // connection does not concern this loop
	}
	for _, cu := range us {
		for _, cv := range vs {
			joined, ok := joinPair(cu, cv, u, v)
			if !ok {
				continue
			}
			kept := make([]*Chain, 0, len(chains)-1)
			for _, c := range chains {
				if c != cu && c != cv {
					kept = append(kept, c)
				}
			}
			return append(kept, joined), true
		}
	}
	return chains, false // only cycle-closing or pin-repeating joins exist
}

// joinPair concatenates cu (oriented to end at u) with cv (oriented to
// start at v). It refuses self-joins and any result that is not a simple
// open path.
func joinPair(cu, cv *Chain, u, v int) (*Chain, bool) {
	if cu == cv {
		return nil, false
	}
	a := append([]int(nil), cu.Pins...)
	if a[len(a)-1] != u {
		reverseInts(a)
	}
	b := append([]int(nil), cv.Pins...)
	if b[0] != v {
		reverseInts(b)
	}
	pins := append(a, b...)
	seen := make(map[int]bool, len(pins))
	for _, p := range pins {
		if seen[p] {
			return nil, false
		}
		seen[p] = true
	}
	return &Chain{Pins: pins}, true
}

func reverseInts(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// generateNets reconstructs every loop from its chains: chains are ordered
// along the loop's module ring and connected cyclically; duplicate nets
// (identical pin pairs from shared chains) are emitted once.
func (r *Result) generateNets() {
	nl := r.NL
	ringIndex := func(lp int, c *Chain) int {
		// Position of the chain's first pin's module in the loop ring;
		// chains over foreign modules (shared segments) sort by the first
		// of the loop's own modules they coincide with, else 0.
		best := 1 << 30
		modulePos := map[int]int{}
		for k, m := range nl.Loops[lp].Modules {
			modulePos[m] = k
		}
		for _, p := range c.Pins {
			m := nl.Segments[nl.Pins[p].Segment].Module
			if pos, ok := modulePos[m]; ok && pos < best {
				best = pos
			}
		}
		if best == 1<<30 {
			return 0
		}
		return best
	}
	seen := map[[2]int]bool{}
	for lp := range nl.Loops {
		chains := append([]*Chain(nil), r.Chains[lp]...)
		sort.SliceStable(chains, func(i, j int) bool {
			return ringIndex(lp, chains[i]) < ringIndex(lp, chains[j])
		})
		n := len(chains)
		if n == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			a := chains[i].tail()
			b := chains[(i+1)%n].head()
			if n == 1 {
				// Single chain: close it tail to head.
				a, b = chains[0].tail(), chains[0].head()
			}
			if a == b {
				continue
			}
			k := pairKey(a, b)
			if seen[k] {
				continue
			}
			seen[k] = true
			r.Nets = append(r.Nets, Net{ID: len(r.Nets), PinA: a, PinB: b, Loop: lp})
		}
	}
}

// FriendGroups returns, for every pin shared by at least two nets, the IDs
// of the nets sharing it (Section III-D2: such nets are friend nets with
// respect to that pin).
func (r *Result) FriendGroups() map[int][]int {
	byPin := map[int][]int{}
	for _, n := range r.Nets {
		byPin[n.PinA] = append(byPin[n.PinA], n.ID)
		byPin[n.PinB] = append(byPin[n.PinB], n.ID)
	}
	out := map[int][]int{}
	for pin, nets := range byPin {
		if len(nets) >= 2 {
			out[pin] = nets
		}
	}
	return out
}

// Stats summarizes the bridging outcome.
type Stats struct {
	Structures      int
	Merges          int
	Nets            int
	RemovedSegments int
	LiveSegments    int
}

// Stats tallies the result.
func (r *Result) Stats() Stats {
	return Stats{
		Structures:      len(r.Structures),
		Merges:          r.Merges,
		Nets:            len(r.Nets),
		RemovedSegments: r.RemovedSegments,
		LiveSegments:    r.NL.LiveSegments(),
	}
}
