package check

import (
	"errors"
	"testing"

	"repro/internal/faults"
	"repro/internal/qc"
	"repro/tqec"
)

// FuzzPipelineInvariants drives randomized reversible circuits through
// the full compression flow and re-derives every structural invariant on
// the result. Graceful routing degradation is legal pipeline behavior on
// hostile inputs, so degraded results get the degradation-tolerant
// structural pass instead of the strict one; everything else must hold
// unconditionally.
func FuzzPipelineInvariants(f *testing.F) {
	f.Add(5, 3, 0, 3, int64(0x4610)) // the 4gt10-v1_81 gate mix
	f.Add(5, 6, 5, 6, int64(0x4440)) // the 4gt4-v0_73 gate mix
	f.Add(3, 1, 0, 0, int64(7))      // a lone Toffoli
	f.Add(2, 0, 1, 1, int64(1))      // CNOT + NOT, no teleportation
	f.Add(1, 0, 0, 1, int64(42))     // NOT-only circuit: nothing to place
	f.Add(4, 2, 3, 2, int64(99))     // mixed small workload
	f.Fuzz(func(t *testing.T, qubits, toffolis, cnots, nots int, seed int64) {
		// Bound the workload: the fuzzer should explore structure, not
		// compile the fuzz driver to death on huge gate counts.
		spec := qc.BenchmarkSpec{
			Name:     "fuzz",
			Qubits:   1 + abs(qubits)%6,
			Toffolis: abs(toffolis) % 6,
			CNOTs:    abs(cnots) % 8,
			NOTs:     abs(nots) % 8,
			Seed:     seed,
		}
		if spec.Gates() == 0 {
			spec.NOTs = 1
		}
		if spec.Toffolis == 0 && spec.CNOTs == 0 {
			// NOT-only circuits produce no dual loops, hence nothing to
			// place: a legitimate empty pipeline input, not a target.
			t.Skip()
		}
		c, err := spec.Generate()
		if err != nil {
			t.Skip() // unrealizable gate mix (e.g. Toffoli on 2 qubits)
		}
		opts := tqec.FastOptions()
		res, err := tqec.CompileContext(t.Context(), c, opts)
		if err != nil {
			// Cooperative cancellation (fuzzing deadline) is not a bug.
			if errors.Is(err, faults.ErrCanceled) {
				t.Skip()
			}
			t.Fatalf("compile: %v", err)
		}
		if err := BridgeReconstructable(res); err != nil {
			t.Errorf("bridge-reconstructable: %v", err)
		}
		if err := PlacementLegal(res); err != nil {
			t.Errorf("placement-legal: %v", err)
		}
		if res.Degraded || len(res.Routing.Failed) > 0 {
			if err := RoutingStructurallySound(res); err != nil {
				t.Errorf("routing-structure: %v", err)
			}
		} else if err := RoutingLegal(res); err != nil {
			t.Errorf("routing-legal: %v", err)
		}
		if err := VolumeAccounting(res); err != nil {
			t.Errorf("volume-accounting: %v", err)
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
