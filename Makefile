# Build/verify entry points. `make ci` is the full gate: vet, the
# repo-specific tqeclint analyzers (doccomment included — the docs gate),
# build, race-enabled tests, a replay of the committed fuzz corpora, and
# a one-iteration bench-json smoke run that validates the BENCH_*.json
# schema round-trips.

GO ?= go

.PHONY: all build vet lint test race fuzz-seeds bench bench-json bench-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Run the in-tree static analyzers (internal/lint) over the whole module.
# Exits non-zero on any finding; see DESIGN.md for the enforced invariants.
lint:
	$(GO) run ./cmd/tqeclint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Replay the committed fuzz seed corpora as plain regression tests.
fuzz-seeds:
	$(GO) test -run 'Fuzz' ./internal/qc/

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Regenerate the committed performance artifact (see BENCHMARKS.md).
bench-json:
	$(GO) run ./cmd/tqecbench -bench-out BENCH_seed.json -bench-iters 3 -bench-kernels

# One-iteration bench run into a scratch file: exercises the full
# measurement path and proves the JSON schema round-trips (-bench-out
# re-reads and validates what it wrote; the self-compare exercises the
# regression judge).
bench-smoke:
	$(GO) run ./cmd/tqecbench -bench-out $${TMPDIR:-/tmp}/BENCH_ci_smoke.json -bench-iters 1
	$(GO) run ./cmd/tqecbench -compare $${TMPDIR:-/tmp}/BENCH_ci_smoke.json $${TMPDIR:-/tmp}/BENCH_ci_smoke.json

ci: vet lint build race fuzz-seeds bench-smoke
