// Distillation: automate the compression Fowler & Devitt performed by hand
// — run the |Y⟩ and |A⟩ state distillation circuits (Figs. 6/7 of the
// paper) through the automated bridge-compression flow and compare against
// their manually optimized boxes (18 and 192 cells).
package main

import (
	"fmt"
	"log"

	"repro/internal/distill"
	"repro/internal/icm"
	"repro/tqec"
)

func main() {
	run("Y", distill.YCircuit(), distill.YBoxVolume)
	fmt.Println()
	run("A", distill.ACircuit(), distill.ABoxVolume)
}

func run(name string, ic *icm.Circuit, manual int) {
	opts := tqec.DefaultOptions()
	opts.Place.Seed = 7
	// The noisy input states ARE the injections here; no further
	// distillation boxes feed them.
	opts.NoBoxes = true
	res, err := tqec.CompileICM(ic, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		log.Fatal(err)
	}
	s := ic.Stats()
	fmt.Printf("|%s> distillation: %d lines, %d CNOTs, %d noisy injections\n",
		name, s.Lines, s.CNOTs, s.NumY+s.NumA)
	fmt.Printf("  canonical volume:        %d\n", res.CanonicalVolume)
	fmt.Printf("  automated compression:   %s (%.1fx vs canonical)\n",
		res.Dims, float64(res.CanonicalVolume)/float64(res.Volume))
	fmt.Printf("  manual (Fowler-Devitt):  %d\n", manual)
	fmt.Printf("  bridging merged %d of %d dual loops; %d/%d nets routed\n",
		res.Bridging.Merges, len(res.Netlist.Loops),
		len(res.Routing.Routes), len(res.Bridging.Nets))
	fmt.Printf("  (hand optimization still wins at this scale — the automated flow's\n")
	fmt.Printf("   module granularity and routing margins cost a constant factor that\n")
	fmt.Printf("   only amortizes on the paper's benchmark-sized circuits)\n")
}
