// Package cluster builds super-modules from the modularized netlist
// (Section III-C1 of the paper): time-dependent super-modules for T-gate
// measurement blocks, distillation-injection super-modules binding |Y⟩/|A⟩
// boxes to their injection modules, and primal-group super-modules that
// merge dual-loop-connected primal modules to shrink the SA problem size
// (the journal version's improvement over the conference version [36]).
//
// The package also fixes the geometry conventions used downstream:
//
//   - A module with k live dual segments occupies (k+1) × 3 × 2 cells
//     (time × width × height): a primal ring three cells wide and two
//     tall, long enough to thread k dual segments.
//   - Segment i's pins sit one cell below and one cell above the module
//     body at x-offset i+1 — the points where the dual segment leaves the
//     enclosing primal loop.
//   - Distillation boxes take the optimized sizes of Fowler & Devitt
//     (|Y⟩ 3×3×2, |A⟩ 16×6×2) and sit to the left (earlier in time) of the
//     module their output state is injected into.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/distill"
	"repro/internal/geom"
	"repro/internal/modular"
)

// SuperKind classifies a super-module.
type SuperKind int

// Super-module kinds.
const (
	KindSingle      SuperKind = iota // an unclustered module
	KindTimeDep                      // T-gate measurement block (Fig. 17(a))
	KindDistillInj                   // box + injected module (Fig. 17(b,c))
	KindPrimalGroup                  // dual-loop-connected primal group
)

// String returns a short mnemonic.
func (k SuperKind) String() string {
	switch k {
	case KindSingle:
		return "single"
	case KindTimeDep:
		return "timedep"
	case KindDistillInj:
		return "distill"
	case KindPrimalGroup:
		return "group"
	}
	return fmt.Sprintf("SuperKind(%d)", int(k))
}

// BoxKind identifies a distillation box type.
type BoxKind int

// Distillation box types.
const (
	BoxY BoxKind = iota
	BoxA
)

// Size returns the box extents.
func (k BoxKind) Size() geom.Point {
	if k == BoxA {
		return distill.ABoxSize
	}
	return distill.YBoxSize
}

// BoxMember is a distillation box embedded in a super-module.
type BoxMember struct {
	Kind   BoxKind
	Offset geom.Point // origin within the super-module
}

// Super is one placeable super-module.
type Super struct {
	ID      int
	Kind    SuperKind
	Members []int        // module IDs
	Offsets []geom.Point // member origins within the super-module
	Boxes   []BoxMember
	Size    geom.Point // (time, width, height) extents
	// TGroup and Qubit identify the T block for time-dependent supers
	// (-1 otherwise); Seq is the block's program-order index per qubit.
	TGroup int
	Qubit  int
	Seq    int
}

// Clustering is the clustered netlist handed to the placer.
type Clustering struct {
	NL     *modular.Netlist
	Supers []Super
	// OfModule maps each module ID to its super-module ID.
	OfModule []int
	// TSLs maps each logical qubit to its time-dependent super-module IDs
	// in program order (Section III-C2's time-dependent super-module
	// lists).
	TSLs map[int][]int

	noBoxes bool
}

// Options configures clustering.
type Options struct {
	// PrimalGroups enables primal-group super-module formation (the
	// journal version; disable to reproduce the conference version [36]
	// for Table III).
	PrimalGroups bool
	// MaxGroupSize caps the number of modules per primal group.
	MaxGroupSize int
	// NoBoxes skips distillation-box attachment; injections are then
	// treated as raw (level-0) state injections, as inside a distillation
	// circuit itself.
	NoBoxes bool
}

// DefaultOptions returns the journal-version configuration.
func DefaultOptions() Options {
	return Options{PrimalGroups: true, MaxGroupSize: 6}
}

// ModuleSize returns the body extents of a module with its current live
// segment count.
func ModuleSize(nl *modular.Netlist, m int) geom.Point {
	k := len(nl.LiveSegmentsOf(m))
	if k < 1 {
		k = 1
	}
	return geom.Pt(k+1, 3, 2)
}

// Build clusters the netlist.
func Build(nl *modular.Netlist, opts Options) (*Clustering, error) {
	if opts.MaxGroupSize <= 0 {
		opts.MaxGroupSize = 6
	}
	c := &Clustering{
		NL:       nl,
		OfModule: make([]int, len(nl.Modules)),
		TSLs:     map[int][]int{},
		noBoxes:  opts.NoBoxes,
	}
	for i := range c.OfModule {
		c.OfModule[i] = -1
	}

	// 1. Time-dependent super-modules, one per T group, in TSL order so
	// Seq is consistent.
	ic := nl.ICM
	for _, tg := range ic.TGroups {
		members := []int{nl.ZMeasModule[tg.ID]}
		members = append(members, nl.TeleportModules[tg.ID][:]...)
		if dup := firstClustered(c, members); dup >= 0 {
			// A module already claimed (e.g. shared z/teleport module in
			// a degenerate circuit): fall back to skipping this group's
			// clustering; its modules place individually.
			continue
		}
		s := c.layoutTimeDep(members)
		s.TGroup = tg.ID
		s.Qubit = tg.Qubit
		s.Seq = tg.Seq
		id := c.addSuper(s)
		c.TSLs[tg.Qubit] = append(c.TSLs[tg.Qubit], id)
	}

	// 2. Distillation-injection super-modules for injection modules not
	// already inside a time-dependent super (those got their boxes there).
	if !opts.NoBoxes {
		for _, m := range nl.Modules {
			if c.OfModule[m.ID] >= 0 {
				continue
			}
			switch m.Kind {
			case modular.KindInjectY:
				c.addSuper(c.layoutDistillInj(m.ID, BoxY))
			case modular.KindInjectA:
				c.addSuper(c.layoutDistillInj(m.ID, BoxA))
			}
		}
	}

	// 3. Primal-group super-modules over the remaining modules.
	if opts.PrimalGroups {
		for _, l := range nl.Loops {
			var group []int
			for _, m := range l.Modules {
				if c.OfModule[m] < 0 {
					group = append(group, m)
					if len(group) == opts.MaxGroupSize {
						break
					}
				}
			}
			if len(group) >= 2 {
				c.addSuper(c.layoutGroup(group))
			}
		}
	}

	// 4. Leftover singles.
	for _, m := range nl.Modules {
		if c.OfModule[m.ID] < 0 {
			c.addSuper(Super{
				Kind:    KindSingle,
				Members: []int{m.ID},
				Offsets: []geom.Point{geom.Pt(0, 0, 0)},
				Size:    ModuleSize(nl, m.ID),
				TGroup:  -1, Qubit: -1,
			})
		}
	}
	return c, c.Validate()
}

func firstClustered(c *Clustering, members []int) int {
	seen := map[int]bool{}
	for _, m := range members {
		if c.OfModule[m] >= 0 || seen[m] {
			return m
		}
		seen[m] = true
	}
	return -1
}

func (c *Clustering) addSuper(s Super) int {
	s.ID = len(c.Supers)
	c.Supers = append(c.Supers, s)
	for _, m := range s.Members {
		c.OfModule[m] = s.ID
	}
	return s.ID
}

// layoutTimeDep arranges a T block (Fig. 17(a)): wide (|A⟩) distillation
// boxes at the far left (the state must be ready before injection), then a
// column holding the Z-measurement module with any small (|Y⟩) boxes
// stacked beneath it, then the four selective-teleportation modules in a
// 2×2 grid whose columns start strictly right of the Z module — so the Z
// measurement precedes every selective teleportation measurement along the
// time axis.
func (c *Clustering) layoutTimeDep(members []int) Super {
	nl := c.NL
	z := members[0]
	teleports := members[1:]

	zSize := ModuleSize(nl, z)
	var smallBoxes, wideBoxes []BoxKind
	collect := func(m int) {
		switch nl.Modules[m].Kind {
		case modular.KindInjectY:
			smallBoxes = append(smallBoxes, BoxY)
		case modular.KindInjectA:
			wideBoxes = append(wideBoxes, BoxA)
		}
	}
	if !c.noBoxes {
		for _, m := range teleports {
			collect(m)
		}
		collect(z)
	}

	// Far-left column of wide boxes.
	wideW, wideH := 0, 0
	for _, b := range wideBoxes {
		sz := b.Size()
		if sz.X > wideW {
			wideW = sz.X
		}
		wideH += sz.Y + 1
	}
	// Z column: the Z module with small boxes stacked beneath.
	zColW, zColH := zSize.X, zSize.Y
	for _, b := range smallBoxes {
		sz := b.Size()
		if sz.X > zColW {
			zColW = sz.X
		}
		zColH += sz.Y + 1
	}
	// Teleport 2×2 grid: cell extents from the largest teleport module.
	cellW, cellH := 0, 0
	for _, m := range teleports {
		sz := ModuleSize(nl, m)
		if sz.X > cellW {
			cellW = sz.X
		}
		if sz.Y > cellH {
			cellH = sz.Y
		}
	}
	cols := (len(teleports) + 1) / 2
	rows := 2
	if len(teleports) < 2 {
		rows = len(teleports)
	}
	gridW := cols*(cellW+1) - 1
	gridH := rows*(cellH+1) - 1

	width := zColW + 1 + gridW
	if wideW > 0 {
		width += wideW + 1
	}
	height := max3(wideH, zColH, gridH)

	s := Super{Kind: KindTimeDep, Size: geom.Pt(width, height, 2), TGroup: -1, Qubit: -1}
	x := 0
	y := 0
	for _, b := range wideBoxes {
		sz := b.Size()
		s.Boxes = append(s.Boxes, BoxMember{Kind: b, Offset: geom.Pt(x, y, 0)})
		y += sz.Y + 1
	}
	if wideW > 0 {
		x += wideW + 1
	}
	// Z module plus small boxes beneath it.
	s.Members = append(s.Members, z)
	s.Offsets = append(s.Offsets, geom.Pt(x, 0, 0))
	y = zSize.Y + 1
	for _, b := range smallBoxes {
		s.Boxes = append(s.Boxes, BoxMember{Kind: b, Offset: geom.Pt(x, y, 0)})
		y += b.Size().Y + 1
	}
	// Teleport grid, columns right of the Z module's end.
	gx := x + zColW + 1
	for i, m := range teleports {
		col, row := i/2, i%2
		s.Members = append(s.Members, m)
		s.Offsets = append(s.Offsets, geom.Pt(gx+col*(cellW+1), row*(cellH+1), 0))
	}
	return s
}

// layoutDistillInj binds a distillation box directly to its injected
// module, box first in time (Fig. 17(b,c)).
func (c *Clustering) layoutDistillInj(m int, box BoxKind) Super {
	bs := box.Size()
	ms := ModuleSize(c.NL, m)
	return Super{
		Kind:    KindDistillInj,
		Members: []int{m},
		Offsets: []geom.Point{geom.Pt(bs.X+1, 0, 0)},
		Boxes:   []BoxMember{{Kind: box, Offset: geom.Pt(0, 0, 0)}},
		Size:    geom.Pt(bs.X+1+ms.X, maxInt(bs.Y, ms.Y), 2),
		TGroup:  -1, Qubit: -1,
	}
}

// layoutGroup shelf-packs a primal group into a near-square block.
func (c *Clustering) layoutGroup(group []int) Super {
	nl := c.NL
	// Sort by decreasing width for a tighter shelf packing; keep order
	// deterministic.
	sorted := append([]int(nil), group...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return ModuleSize(nl, sorted[i]).X > ModuleSize(nl, sorted[j]).X
	})
	area := 0
	for _, m := range sorted {
		sz := ModuleSize(nl, m)
		area += (sz.X + 1) * (sz.Y + 1)
	}
	targetW := isqrt(area) + 1

	s := Super{Kind: KindPrimalGroup, TGroup: -1, Qubit: -1}
	x, y, rowH, width := 0, 0, 0, 0
	for _, m := range sorted {
		sz := ModuleSize(nl, m)
		if x > 0 && x+sz.X > targetW {
			y += rowH + 1
			x, rowH = 0, 0
		}
		s.Members = append(s.Members, m)
		s.Offsets = append(s.Offsets, geom.Pt(x, y, 0))
		if x+sz.X > width {
			width = x + sz.X
		}
		if sz.Y > rowH {
			rowH = sz.Y
		}
		x += sz.X + 1
	}
	s.Size = geom.Pt(width, y+rowH, 2)
	return s
}

// Validate checks that every module belongs to exactly one super-module,
// offsets stay inside super bounds, and members do not overlap.
func (c *Clustering) Validate() error {
	for m, s := range c.OfModule {
		if s < 0 || s >= len(c.Supers) {
			return fmt.Errorf("cluster: module %d unassigned", m)
		}
	}
	for _, s := range c.Supers {
		if len(s.Members) != len(s.Offsets) {
			return fmt.Errorf("cluster: super %d members/offsets mismatch", s.ID)
		}
		var boxes []geom.Box
		for i, m := range s.Members {
			if c.OfModule[m] != s.ID {
				return fmt.Errorf("cluster: super %d member %d assigned elsewhere", s.ID, m)
			}
			sz := ModuleSize(c.NL, m)
			b := geom.BoxAt(s.Offsets[i], sz.X, sz.Y, sz.Z)
			if !geom.BoxAt(geom.Pt(0, 0, 0), s.Size.X, s.Size.Y, s.Size.Z).ContainsBox(b) {
				return fmt.Errorf("cluster: super %d member %d overflows: %v ⊄ %v", s.ID, m, b, s.Size)
			}
			boxes = append(boxes, b)
		}
		for _, bm := range s.Boxes {
			sz := bm.Kind.Size()
			b := geom.BoxAt(bm.Offset, sz.X, sz.Y, sz.Z)
			if !geom.BoxAt(geom.Pt(0, 0, 0), s.Size.X, s.Size.Y, s.Size.Z).ContainsBox(b) {
				return fmt.Errorf("cluster: super %d box overflows", s.ID)
			}
			boxes = append(boxes, b)
		}
		for i := 0; i < len(boxes); i++ {
			for j := i + 1; j < len(boxes); j++ {
				if boxes[i].Intersects(boxes[j]) {
					return fmt.Errorf("cluster: super %d internal overlap", s.ID)
				}
			}
		}
	}
	for q, tsl := range c.TSLs {
		for k, id := range tsl {
			s := c.Supers[id]
			if s.Kind != KindTimeDep || s.Qubit != q || s.Seq != k {
				return fmt.Errorf("cluster: TSL[%d][%d] inconsistent", q, k)
			}
		}
	}
	return nil
}

// PinOffset returns pin p's position relative to its module's origin: one
// cell below (end 0) or above (end 1) the body at the segment's x slot.
// Pins of removed segments have no geometric location and return an error.
func (c *Clustering) PinOffset(p int) (geom.Point, error) {
	nl := c.NL
	pin := nl.Pins[p]
	seg := nl.Segments[pin.Segment]
	if seg.Removed {
		return geom.Point{}, fmt.Errorf("cluster: pin %d belongs to removed segment %d", p, seg.ID)
	}
	idx := -1
	for i, sid := range nl.LiveSegmentsOf(seg.Module) {
		if sid == seg.ID {
			idx = i
			break
		}
	}
	if idx < 0 {
		return geom.Point{}, fmt.Errorf("cluster: segment %d not live in module %d", seg.ID, seg.Module)
	}
	if pin.End == 0 {
		return geom.Pt(idx+1, 1, -1), nil
	}
	return geom.Pt(idx+1, 1, 2), nil
}

// Stats summarizes the clustering (the #Nodes column of Table I).
type Stats struct {
	Nodes        int // B*-tree nodes = number of super-modules
	TimeDep      int
	DistillInj   int
	PrimalGroups int
	Singles      int
}

// Stats tallies the clustering.
func (c *Clustering) Stats() Stats {
	s := Stats{Nodes: len(c.Supers)}
	for _, sp := range c.Supers {
		switch sp.Kind {
		case KindTimeDep:
			s.TimeDep++
		case KindDistillInj:
			s.DistillInj++
		case KindPrimalGroup:
			s.PrimalGroups++
		case KindSingle:
			s.Singles++
		}
	}
	return s
}

func max3(a, b, c int) int { return maxInt(a, maxInt(b, c)) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func isqrt(n int) int {
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}
