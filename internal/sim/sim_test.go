package sim

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/qc"
)

func apply(t *testing.T, s *State, g qc.Gate) {
	t.Helper()
	if err := s.Apply(g); err != nil {
		t.Fatal(err)
	}
}

func newState(t *testing.T, n int) *State {
	t.Helper()
	s, err := NewState(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func basis(t *testing.T, n, k int) *State {
	t.Helper()
	s, err := Basis(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStateRejectsBadQubitCount(t *testing.T) {
	for _, n := range []int{0, -1, 21} {
		if _, err := NewState(n); err == nil {
			t.Fatalf("qubit count %d accepted", n)
		}
	}
	if _, err := Basis(2, 4); err == nil {
		t.Fatal("out-of-range basis index accepted")
	}
}

func TestNOTFlipsBasis(t *testing.T) {
	s := newState(t, 2)
	apply(t, s, qc.NOT(0))
	// Qubit 0 is the MSB: |00⟩ → |10⟩ = index 2.
	if cmplx.Abs(s.Amplitude(2)-1) > 1e-12 {
		t.Fatalf("amp: %v", s.amp)
	}
}

func TestCNOTTruthTable(t *testing.T) {
	want := map[int]int{0: 0, 1: 1, 2: 3, 3: 2} // control = qubit 0
	for in, out := range want {
		s := basis(t, 2, in)
		apply(t, s, qc.CNOT(0, 1))
		if cmplx.Abs(s.Amplitude(out)-1) > 1e-12 {
			t.Fatalf("CNOT|%02b⟩: %v", in, s.amp)
		}
	}
}

func TestToffoliTruthTable(t *testing.T) {
	for in := 0; in < 8; in++ {
		s := basis(t, 3, in)
		apply(t, s, qc.Toffoli(0, 1, 2))
		out := in
		if in&0b110 == 0b110 {
			out = in ^ 1
		}
		if cmplx.Abs(s.Amplitude(out)-1) > 1e-12 {
			t.Fatalf("Toffoli|%03b⟩ wrong", in)
		}
	}
}

func TestSwapAndFredkin(t *testing.T) {
	s := basis(t, 2, 0b10)
	apply(t, s, qc.Swap(0, 1))
	if cmplx.Abs(s.Amplitude(0b01)-1) > 1e-12 {
		t.Fatal("swap failed")
	}
	// Fredkin swaps only when control set.
	s2 := basis(t, 3, 0b110)
	apply(t, s2, qc.Fredkin(0, 1, 2))
	if cmplx.Abs(s2.Amplitude(0b101)-1) > 1e-12 {
		t.Fatal("controlled swap (on) failed")
	}
	s3 := basis(t, 3, 0b010)
	apply(t, s3, qc.Fredkin(0, 1, 2))
	if cmplx.Abs(s3.Amplitude(0b010)-1) > 1e-12 {
		t.Fatal("controlled swap (off) should be identity")
	}
}

func TestHadamardSelfInverse(t *testing.T) {
	s := newState(t, 1)
	apply(t, s, qc.H(0))
	if math.Abs(cmplx.Abs(s.Amplitude(0))-1/math.Sqrt2) > 1e-12 {
		t.Fatal("H|0⟩ amplitude wrong")
	}
	apply(t, s, qc.H(0))
	if cmplx.Abs(s.Amplitude(0)-1) > 1e-12 {
		t.Fatal("H·H ≠ I")
	}
}

func TestPhaseAlgebra(t *testing.T) {
	// T·T = P, P·P = Z on |1⟩.
	one := basis(t, 1, 1)
	apply(t, one, qc.T(0))
	apply(t, one, qc.T(0))
	p := basis(t, 1, 1)
	apply(t, p, qc.P(0))
	if cmplx.Abs(one.Amplitude(1)-p.Amplitude(1)) > 1e-12 {
		t.Fatal("T² ≠ P")
	}
	apply(t, p, qc.P(0))
	if cmplx.Abs(p.Amplitude(1)+1) > 1e-12 {
		t.Fatal("P² ≠ Z")
	}
	// T·T† = I.
	s := basis(t, 1, 1)
	apply(t, s, qc.T(0))
	apply(t, s, qc.Tdag(0))
	if cmplx.Abs(s.Amplitude(1)-1) > 1e-12 {
		t.Fatal("T·T† ≠ I")
	}
}

func TestVSquaredIsX(t *testing.T) {
	for in := 0; in < 2; in++ {
		s := basis(t, 1, in)
		apply(t, s, qc.V(0))
		apply(t, s, qc.V(0))
		if cmplx.Abs(s.Amplitude(1-in)-1) > 1e-9 {
			t.Fatalf("V²|%d⟩ ≠ X|%d⟩: %v", in, in, s.amp)
		}
	}
	// V·V† = I.
	s := basis(t, 1, 1)
	apply(t, s, qc.V(0))
	apply(t, s, qc.Gate{Kind: qc.GateVdag, Targets: []int{0}})
	if cmplx.Abs(s.Amplitude(1)-1) > 1e-9 {
		t.Fatal("V·V† ≠ I")
	}
}

func TestFidelityUpToPhase(t *testing.T) {
	a := basis(t, 1, 0)
	b := basis(t, 1, 0)
	// Multiply b by a global phase via Z on |0⟩... Z|0⟩ = |0⟩; use T on
	// |1⟩ states instead.
	a1 := basis(t, 1, 1)
	b1 := basis(t, 1, 1)
	apply(t, b1, qc.T(0))
	if f := FidelityUpToPhase(a1, b1); math.Abs(f-1) > 1e-12 {
		t.Fatalf("phase should not affect fidelity: %f", f)
	}
	apply(t, b, qc.H(0))
	if f := FidelityUpToPhase(a, b); math.Abs(f-1/math.Sqrt2) > 1e-12 {
		t.Fatalf("fidelity: %f", f)
	}
}

func TestNormPreserved(t *testing.T) {
	c := qc.New("n", 3)
	c.Append(qc.H(0), qc.CNOT(0, 1), qc.T(1), qc.V(2), qc.Toffoli(0, 1, 2), qc.P(0))
	s := newState(t, 3)
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	var norm float64
	for k := range s.amp {
		norm += real(s.amp[k])*real(s.amp[k]) + imag(s.amp[k])*imag(s.amp[k])
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("norm drifted: %f", norm)
	}
}

func TestRejectsOutOfRange(t *testing.T) {
	s := newState(t, 2)
	if err := s.Apply(qc.CNOT(0, 5)); err == nil {
		t.Fatal("out-of-range gate accepted")
	}
}

// Property: every supported gate preserves the norm on random states.
func TestQuickUnitarity(t *testing.T) {
	gates := []qc.Gate{
		qc.NOT(0), qc.H(1), qc.P(2), qc.T(0), qc.Tdag(1), qc.V(2),
		{Kind: qc.GateVdag, Targets: []int{0}},
		{Kind: qc.GatePdag, Targets: []int{1}},
		{Kind: qc.GateZ, Targets: []int{2}},
		qc.CNOT(0, 1), qc.Swap(1, 2), qc.Toffoli(0, 1, 2),
		{Kind: qc.GateV, Controls: []int{0}, Targets: []int{2}},
	}
	f := func(re, im [8]int8) bool {
		s := newState(t, 3)
		var norm float64
		for k := 0; k < 8; k++ {
			s.amp[k] = complex(float64(re[k]), float64(im[k]))
			norm += real(s.amp[k])*real(s.amp[k]) + imag(s.amp[k])*imag(s.amp[k])
		}
		if norm == 0 {
			return true
		}
		scale := complex(1/math.Sqrt(norm), 0)
		for k := range s.amp {
			s.amp[k] *= scale
		}
		for _, g := range gates {
			if err := s.Apply(g); err != nil {
				return false
			}
		}
		var after float64
		for k := range s.amp {
			after += real(s.amp[k])*real(s.amp[k]) + imag(s.amp[k])*imag(s.amp[k])
		}
		return math.Abs(after-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: gate followed by its inverse is the identity on random basis
// states.
func TestQuickInverses(t *testing.T) {
	pairs := [][2]qc.Gate{
		{qc.T(0), qc.Tdag(0)},
		{qc.P(1), {Kind: qc.GatePdag, Targets: []int{1}}},
		{qc.V(2), {Kind: qc.GateVdag, Targets: []int{2}}},
		{qc.H(0), qc.H(0)},
		{qc.NOT(1), qc.NOT(1)},
		{qc.CNOT(0, 2), qc.CNOT(0, 2)},
		{qc.Toffoli(0, 1, 2), qc.Toffoli(0, 1, 2)},
		{qc.Swap(0, 1), qc.Swap(0, 1)},
	}
	f := func(k uint8) bool {
		idx := int(k % 8)
		for _, p := range pairs {
			s := basis(t, 3, idx)
			if s.Apply(p[0]) != nil || s.Apply(p[1]) != nil {
				return false
			}
			if cmplx.Abs(s.Amplitude(idx)-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
