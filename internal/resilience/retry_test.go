package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
)

// recordSleep replaces the backoff timer with a schedule recorder.
func recordSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{faults.Transient("chaos", nil), Retryable},
		{fmt.Errorf("stage: %w", faults.ErrDegraded), Retryable},
		{faults.ErrPanic, RetryOnce},
		{faults.ErrCanceled, Terminal},
		{context.DeadlineExceeded, Terminal},
		{faults.ErrPlacementInvalid, Terminal},
		{faults.ErrUnroutable, Terminal},
		{faults.ErrInvariant, Terminal},
		{errors.New("mystery"), Terminal},
		{nil, Terminal},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v want %v", c.err, got, c.want)
		}
	}
}

func TestRetryEventuallySucceeds(t *testing.T) {
	var delays []time.Duration
	attempts := 0
	err := Do(context.Background(), Policy{MaxAttempts: 5, Sleep: recordSleep(&delays)},
		func(_ context.Context, attempt int) error {
			attempts++
			if attempt < 2 {
				return faults.Transient("flaky", nil)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("retry should have succeeded: %v", err)
	}
	if attempts != 3 || len(delays) != 2 {
		t.Fatalf("attempts=%d delays=%v, want 3 attempts and 2 sleeps", attempts, delays)
	}
}

func TestRetryTerminalStopsImmediately(t *testing.T) {
	attempts := 0
	err := Do(context.Background(), Policy{MaxAttempts: 5},
		func(_ context.Context, _ int) error {
			attempts++
			return faults.ErrPlacementInvalid
		})
	if !errors.Is(err, faults.ErrPlacementInvalid) || attempts != 1 {
		t.Fatalf("terminal error retried: attempts=%d err=%v", attempts, err)
	}
}

func TestRetryPanicOnlyOnce(t *testing.T) {
	attempts := 0
	var delays []time.Duration
	err := Do(context.Background(), Policy{MaxAttempts: 5, Sleep: recordSleep(&delays)},
		func(_ context.Context, _ int) error {
			attempts++
			return fmt.Errorf("stage: %w", faults.ErrPanic)
		})
	if !errors.Is(err, faults.ErrPanic) {
		t.Fatalf("want panic error, got %v", err)
	}
	if attempts != 2 {
		t.Fatalf("panic must retry exactly once, got %d attempts", attempts)
	}
}

func TestRetryExhaustionReturnsLastError(t *testing.T) {
	var delays []time.Duration
	err := Do(context.Background(), Policy{MaxAttempts: 3, Sleep: recordSleep(&delays)},
		func(_ context.Context, attempt int) error {
			return faults.Transient(fmt.Sprintf("try %d", attempt), nil)
		})
	if !errors.Is(err, faults.ErrTransient) {
		t.Fatalf("want last transient error, got %v", err)
	}
	if len(delays) != 2 {
		t.Fatalf("3 attempts should sleep twice, slept %v", delays)
	}
}

// The backoff schedule is a pure function of the policy: same seed, same
// delays; different seeds decorrelate; delays grow and respect the cap.
func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, JitterSeed: 42}.withDefaults()
	var first []time.Duration
	for attempt := 0; attempt < 6; attempt++ {
		d := p.backoff(attempt)
		first = append(first, d)
		base := 10 * time.Millisecond << attempt
		if base > 80*time.Millisecond {
			base = 80 * time.Millisecond
		}
		if d < base/2 || d > base {
			t.Fatalf("attempt %d delay %v outside [%v,%v]", attempt, d, base/2, base)
		}
	}
	for attempt := 0; attempt < 6; attempt++ {
		if d := p.backoff(attempt); d != first[attempt] {
			t.Fatalf("backoff not deterministic at attempt %d: %v vs %v", attempt, d, first[attempt])
		}
	}
	p2 := p
	p2.JitterSeed = 43
	same := 0
	for attempt := 0; attempt < 6; attempt++ {
		if p2.backoff(attempt) == first[attempt] {
			same++
		}
	}
	if same == 6 {
		t.Fatal("different seeds produced an identical schedule")
	}
}

func TestRetryStopsOnDeadContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	err := Do(ctx, Policy{MaxAttempts: 10, Sleep: func(context.Context, time.Duration) error { return nil }},
		func(_ context.Context, _ int) error {
			attempts++
			cancel()
			return faults.Transient("then the world ended", nil)
		})
	if err == nil || attempts != 1 {
		t.Fatalf("dead context must stop the loop: attempts=%d err=%v", attempts, err)
	}
}

// A per-attempt timeout bounds each try without consuming the parent
// budget: an attempt that blocks past AttemptTimeout is cut off and
// retried while the parent deadline still stands.
func TestPerAttemptDeadlineBudget(t *testing.T) {
	var delays []time.Duration
	attempts := 0
	err := Do(context.Background(), Policy{
		MaxAttempts:    3,
		AttemptTimeout: 5 * time.Millisecond,
		Sleep:          recordSleep(&delays),
	}, func(actx context.Context, attempt int) error {
		attempts++
		if attempt < 1 {
			<-actx.Done() // simulate a stuck attempt
			return faults.Canceled(actx)
		}
		if _, ok := actx.Deadline(); !ok {
			t.Fatal("attempt context missing its deadline")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("timed-out attempt should retry and succeed: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
}

func TestBreakerTripAndRecover(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerSettings{Threshold: 3, Cooldown: 10 * time.Second,
		Now: func() time.Time { return now }})
	if b.State() != BreakerClosed || b.Allow() != nil {
		t.Fatal("new breaker must be closed")
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("tripped below threshold")
	}
	b.Failure()
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("threshold reached but state=%v trips=%d", b.State(), b.Trips())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted a request: %v", err)
	}
	if ra := b.RetryAfter(); ra != 10*time.Second {
		t.Fatalf("retry-after %v, want full cooldown", ra)
	}

	// Cooldown elapses: exactly one probe gets through.
	now = now.Add(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("post-cooldown probe rejected: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second concurrent probe admitted")
	}

	// Probe fails: straight back to open, new cooldown.
	b.Failure()
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("failed probe: state=%v trips=%d", b.State(), b.Trips())
	}

	// Next probe succeeds: closed again, streak reset.
	now = now.Add(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Success()
	if b.State() != BreakerClosed || b.Allow() != nil {
		t.Fatal("successful probe must close the breaker")
	}
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("failure streak not reset by success")
	}
}

// Recording successes between failures keeps the breaker closed: the
// threshold is consecutive, not cumulative.
func TestBreakerConsecutiveSemantics(t *testing.T) {
	b := NewBreaker(BreakerSettings{Threshold: 2, Cooldown: time.Second})
	for i := 0; i < 10; i++ {
		b.Failure()
		b.Success()
	}
	if b.State() != BreakerClosed || b.Trips() != 0 {
		t.Fatalf("interleaved failures tripped the breaker: %v", b.State())
	}
}
