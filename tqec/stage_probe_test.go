package tqec

import (
	"os"
	"testing"
	"time"
)

// TestStageProbe (enabled via TQEC_PROBE=benchname) times pipeline stages
// on one benchmark. Dev tool, skipped by default.
func TestStageProbe(t *testing.T) {
	name := os.Getenv("TQEC_PROBE")
	if name == "" {
		t.Skip("set TQEC_PROBE=<benchmark> to run")
	}
	opts := DefaultOptions()
	opts.Place.Seed = 3
	start := time.Now()
	res, err := CompileBenchmark(name, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("total %.1fs; breakdown:\n%s", time.Since(start).Seconds(), res.Breakdown)
	t.Logf("dims %v, %d/%d nets routed, %d rip-ups, first pass %d",
		res.Dims, len(res.Routing.Routes), len(res.Bridging.Nets),
		res.Routing.RippedUp, res.Routing.FirstPassRouted)
}
