package icm

import (
	"testing"
	"testing/quick"

	"repro/internal/decompose"
	"repro/internal/qc"
)

func causalFor(t testing.TB, c *qc.Circuit) (*Circuit, *CausalGraph) {
	t.Helper()
	r, err := decompose.Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := FromDecomposed(r.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	return ic, ic.BuildCausalGraph()
}

func TestCausalGraphShape(t *testing.T) {
	c := qc.New("cg", 2)
	c.Append(qc.CNOT(0, 1))
	ic, g := causalFor(t, c)
	// 2 inits + 1 cnot + 2 meas.
	if len(g.Events) != 2*len(ic.Lines)+len(ic.CNOTs) {
		t.Fatalf("events: %d", len(g.Events))
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, len(g.Events))
	for i, v := range order {
		pos[v] = i
	}
	// Init precedes CNOT precedes meas on each line.
	for line := 0; line < 2; line++ {
		if pos[g.InitEvent(line)] >= pos[g.CNOTEvent(0)] {
			t.Errorf("line %d init not before cnot", line)
		}
		if pos[g.CNOTEvent(0)] >= pos[g.MeasEvent(line)] {
			t.Errorf("line %d meas not after cnot", line)
		}
	}
}

func TestCausalGraphTOrdering(t *testing.T) {
	c := qc.New("tt", 1)
	c.Append(qc.T(0), qc.T(0))
	ic, g := causalFor(t, c)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, len(g.Events))
	for i, v := range order {
		pos[v] = i
	}
	tg0, tg1 := ic.TGroups[0], ic.TGroups[1]
	// Z measurement before its block's selective measurements.
	for _, tl := range tg0.TeleportLines {
		if pos[g.MeasEvent(tg0.ZMeasLine)] >= pos[g.MeasEvent(tl)] {
			t.Fatal("Z measurement must precede teleport measurements")
		}
	}
	// First block's selective measurements before the second's.
	for _, a := range tg0.TeleportLines {
		for _, b := range tg1.TeleportLines {
			if pos[g.MeasEvent(a)] >= pos[g.MeasEvent(b)] {
				t.Fatal("T gate 0 measurements must precede T gate 1's")
			}
		}
	}
}

func TestCausalDepthBounds(t *testing.T) {
	c := qc.New("depth", 2)
	c.Append(qc.T(0), qc.CNOT(0, 1), qc.T(1))
	ic, g := causalFor(t, c)
	depth, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	_, asap := ic.ScheduleASAP()
	if depth < asap {
		t.Fatalf("causal depth %d below ASAP CNOT depth %d", depth, asap)
	}
}

func TestCheckMeasurementOrder(t *testing.T) {
	c := qc.New("chk", 1)
	c.Append(qc.T(0))
	ic, g := causalFor(t, c)
	tg := ic.TGroups[0]
	// Valid: Z measured at 0, everything else later.
	valid := func(line int) int {
		if line == tg.ZMeasLine {
			return 0
		}
		return 10
	}
	if err := g.CheckMeasurementOrder(valid); err != nil {
		t.Fatalf("valid order rejected: %v", err)
	}
	// Invalid: Z measured after the teleport measurements.
	invalid := func(line int) int {
		if line == tg.ZMeasLine {
			return 99
		}
		return 1
	}
	if err := g.CheckMeasurementOrder(invalid); err == nil {
		t.Fatal("inverted order accepted")
	}
}

// Property: the causal graph of any generated circuit is acyclic and its
// topological order respects per-line CNOT program order.
func TestQuickCausalAcyclic(t *testing.T) {
	f := func(q uint8, nt uint8, seed int64) bool {
		spec := qc.BenchmarkSpec{
			Name:     "fuzz",
			Qubits:   3 + int(q%8),
			Toffolis: 1 + int(nt%5),
			Seed:     seed,
		}
		r, err := decompose.Decompose(mustGen(t, spec))
		if err != nil {
			return false
		}
		ic, err := FromDecomposed(r.Circuit)
		if err != nil {
			return false
		}
		g := ic.BuildCausalGraph()
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make([]int, len(g.Events))
		for i, v := range order {
			pos[v] = i
		}
		lastCNOT := map[int]int{} // line -> event pos of its latest CNOT
		for id, gate := range ic.CNOTs {
			p := pos[g.CNOTEvent(id)]
			for _, line := range []int{gate.Control, gate.Target} {
				if prev, ok := lastCNOT[line]; ok && p <= prev {
					return false
				}
				lastCNOT[line] = p
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
