package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe extracts the expectation from a trailing `// want `+"`regex`"+“ comment.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseWants scans every fixture file for `// want` comments and returns
// one expectation per comment, anchored to the comment's own line.
func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatalf("glob %s: %v", dir, err)
	}
	sort.Strings(entries)
	var wants []*want
	for _, path := range entries {
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, line, m[1], err)
			}
			wants = append(wants, &want{file: path, line: line, re: re})
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scan %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("close %s: %v", path, err)
		}
	}
	if len(wants) == 0 {
		t.Fatalf("no // want comments found under %s", dir)
	}
	return wants
}

// runGolden typechecks one fixture directory under asPath, runs exactly one
// analyzer over it, and matches findings against the // want expectations in
// both directions: every finding must be wanted, every want must be found.
func runGolden(t *testing.T, analyzer, asPath string) {
	t.Helper()
	a := ByName(analyzer)
	if a == nil {
		t.Fatalf("no analyzer named %q", analyzer)
	}
	dir := filepath.Join("testdata", "src", analyzer)
	pkg, err := LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	wants := parseWants(t, dir)
	findings := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	matchWants(t, findings, wants)
}

func TestGoldenNoPanic(t *testing.T) {
	runGolden(t, "nopanic", "repro/internal/nptest")
}

func TestGoldenCtxFlow(t *testing.T) {
	runGolden(t, "ctxflow", "repro/internal/ctxtest")
}

func TestGoldenErrDiscard(t *testing.T) {
	runGolden(t, "errdiscard", "repro/internal/edtest")
}

func TestGoldenDetRand(t *testing.T) {
	runGolden(t, "detrand", "repro/internal/qc/drtest")
}

func TestGoldenCtxSleep(t *testing.T) {
	runGolden(t, "ctxsleep", "repro/internal/cstest")
}

func TestGoldenGeomBounds(t *testing.T) {
	runGolden(t, "geombounds", "repro/internal/gbtest")
}

func TestGoldenDocComment(t *testing.T) {
	runGolden(t, "doccomment", "repro/internal/dctest")
}

func TestGoldenGoLeak(t *testing.T) {
	runGolden(t, "goleak", "repro/internal/gltest")
}

func TestGoldenLockCheck(t *testing.T) {
	runGolden(t, "lockcheck", "repro/internal/lctest")
}

// TestGoldenDetTaint is the cross-package taint fixture: sources live in
// testdata/src/dettaint/taintsrc, sinks in testdata/src/dettaint, and the
// findings prove flows that crossed the package boundary through the
// function-summary layer.
func TestGoldenDetTaint(t *testing.T) {
	srcDir := filepath.Join("testdata", "src", "dettaint", "taintsrc")
	sinkDir := filepath.Join("testdata", "src", "dettaint")
	pkgs, err := LoadDirs([]DirSpec{
		{Dir: srcDir, AsPath: "repro/internal/dttest/taintsrc"},
		{Dir: sinkDir, AsPath: "repro/internal/dttest"},
	})
	if err != nil {
		t.Fatalf("load fixture packages: %v", err)
	}
	wants := append(parseWants(t, sinkDir), optionalWants(t, srcDir)...)
	findings := RunAnalyzers(pkgs, []*Analyzer{ByName("dettaint")})
	matchWants(t, findings, wants)
}

// optionalWants parses want comments from a directory that may have none
// (the taint-source package is expected to be finding-free).
func optionalWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatalf("glob %s: %v", dir, err)
	}
	var wants []*want
	for _, path := range entries {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		for i, text := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(text)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
			}
			wants = append(wants, &want{file: path, line: i + 1, re: re})
		}
	}
	return wants
}

// matchWants checks findings against wants in both directions.
func matchWants(t *testing.T, findings []Finding, wants []*want) {
	t.Helper()
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.hit || filepath.Clean(w.file) != filepath.Clean(f.File) || w.line != f.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want `%s`", w.file, w.line, w.re)
		}
	}
}

// TestSuppressionUnused checks that a directive whose analyzer no longer
// fires on the covered line is itself reported, and that a directive
// naming an unknown analyzer is too.
func TestSuppressionUnused(t *testing.T) {
	dir := t.TempDir()
	src := `package audited

// Clean is fine; the directive below it suppresses nothing.
func Clean() int {
	//lint:ignore nopanic this panic was removed two refactors ago
	return 1
}

// Typo names an analyzer that does not exist.
func Typo() int {
	//lint:ignore nopanics reason with a typo in the analyzer name
	return 2
}

// Live has a real violation; its directive is used, not reported.
func Live() {
	//lint:ignore nopanic exercised by the golden test
	panic("suppressed")
}
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "repro/internal/audtest")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings := RunAnalyzers([]*Package{pkg}, []*Analyzer{ByName("nopanic")})
	var unused, unknown, other []Finding
	for _, f := range findings {
		switch {
		case f.Analyzer == "lint" && strings.Contains(f.Message, "unused //lint:ignore"):
			unused = append(unused, f)
		case f.Analyzer == "lint" && strings.Contains(f.Message, "unknown analyzer"):
			unknown = append(unknown, f)
		default:
			other = append(other, f)
		}
	}
	if len(unused) != 1 {
		t.Errorf("want exactly one unused-directive finding, got %v", unused)
	}
	if len(unknown) != 1 {
		t.Errorf("want exactly one unknown-analyzer finding, got %v", unknown)
	}
	if len(other) != 0 {
		t.Errorf("unexpected findings: %v", other)
	}
}

// TestSuppressionMalformed checks that a directive missing its reason is
// itself reported under the "lint" pseudo-analyzer rather than silently
// swallowing findings.
func TestSuppressionMalformed(t *testing.T) {
	dir := t.TempDir()
	src := `package badpkg

func f() {
	//lint:ignore nopanic
	panic("still reported")
}
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "repro/internal/badtest")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings := RunAnalyzers([]*Package{pkg}, []*Analyzer{ByName("nopanic")})
	var gotMalformed, gotPanic bool
	for _, f := range findings {
		switch f.Analyzer {
		case "lint":
			gotMalformed = true
		case "nopanic":
			gotPanic = true
		}
	}
	if !gotMalformed {
		t.Errorf("malformed directive not reported: %v", findings)
	}
	if !gotPanic {
		t.Errorf("malformed directive suppressed the panic finding: %v", findings)
	}
}

// TestFindingString pins the human-readable output format the CLI prints.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "nopanic", Message: "call to panic", File: "a/b.go", Line: 7, Col: 3}
	got := f.String()
	expect := fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	if got != expect {
		t.Errorf("Finding.String() = %q, want %q", got, expect)
	}
}
