// Package icm implements the ICM (Initialization, CNOT, Measurement)
// representation of fault-tolerant circuits and the conversion from a
// decomposed {CNOT, P, V, T} circuit into it, following Paler et al. and
// Section II of the paper.
//
// An ICM circuit is a set of qubit lines, each with an initialization
// (|0⟩, |+⟩, or a |Y⟩/|A⟩ state injection) and a measurement basis, plus a
// list of CNOT gates between lines. Every non-CNOT gate of the TQEC set is
// realized by gate teleportation:
//
//   - P (and V, up to basis change) consumes one |Y⟩-injected ancilla line
//     coupled by one CNOT (Fig. 13 of the paper),
//   - T consumes one |A⟩-injected ancilla line, one |Y⟩-injected line for
//     the deterministic P-correction, and three workspace lines, coupled by
//     six CNOTs (Fig. 8(a)); its five measurements are time-ordered: the
//     input line's Z-basis measurement must precede the four selective
//     teleportation measurements, and the selective measurements of
//     successive T gates on the same logical qubit must be performed in
//     program order (Fig. 8(c,d)).
//
// The conversion records every T-gate block as a TGroup and maintains the
// per-qubit time-dependent super-module lists (TSLs) the placer needs.
package icm

import (
	"fmt"

	"repro/internal/qc"
)

// InitKind is the initialization of an ICM line.
type InitKind int

// Line initializations. InjectY and InjectA mark state injections that must
// be fed by a distillation box.
const (
	InitZero InitKind = iota // |0⟩, Z-basis initialization
	InitPlus                 // |+⟩, X-basis initialization
	InjectY                  // |Y⟩ state injection
	InjectA                  // |A⟩ state injection
)

// String returns a short mnemonic.
func (k InitKind) String() string {
	switch k {
	case InitZero:
		return "|0>"
	case InitPlus:
		return "|+>"
	case InjectY:
		return "|Y>"
	case InjectA:
		return "|A>"
	}
	return fmt.Sprintf("InitKind(%d)", int(k))
}

// MeasKind is the measurement terminating an ICM line.
type MeasKind int

// Line measurements. MeasOut marks a primary output (measured by the
// computation's consumer, not the circuit).
const (
	MeasZ MeasKind = iota
	MeasX
	MeasOut
)

// String returns a short mnemonic.
func (k MeasKind) String() string {
	switch k {
	case MeasZ:
		return "MZ"
	case MeasX:
		return "MX"
	case MeasOut:
		return "out"
	}
	return fmt.Sprintf("MeasKind(%d)", int(k))
}

// Line is one qubit line of the ICM circuit.
type Line struct {
	ID    int
	Init  InitKind
	Meas  MeasKind
	Label string
	// Qubit is the logical circuit qubit this line carries at creation
	// time, or -1 for ancilla lines.
	Qubit int
}

// CNOT is one CNOT gate between two lines.
type CNOT struct {
	ID      int
	Control int // line ID
	Target  int // line ID
}

// TGroup records one T-gate teleportation block and its time-ordered
// measurement constraint (Section II-B).
type TGroup struct {
	ID    int
	Qubit int // logical qubit the T acts on
	// Seq is the position of this T gate in the per-qubit program order;
	// selective measurements of group Seq=k must precede those of Seq=k+1.
	Seq int
	// ZMeasLine is the line whose Z-basis measurement must be performed
	// before the selective teleportation measurements.
	ZMeasLine int
	// TeleportLines are the four lines carrying the selective
	// teleportation measurements.
	TeleportLines [4]int
	// CNOTs are the IDs of the six CNOTs in this block.
	CNOTs []int
}

// Circuit is an ICM circuit.
type Circuit struct {
	Name    string
	Lines   []Line
	CNOTs   []CNOT
	TGroups []TGroup
	// TSL maps each logical qubit to its ordered list of TGroup IDs (the
	// time-dependent super-module list of Section III-C2).
	TSL map[int][]int
	// NumLogical is the number of logical (input) qubits.
	NumLogical int
	// Paulis counts frame-tracked Pauli gates (zero geometric cost).
	Paulis int
}

// Stats are the Table-I statistics of an ICM circuit.
type Stats struct {
	Lines   int // #Qubits_d
	CNOTs   int
	NumY    int // #|Y⟩ ancillas
	NumA    int // #|A⟩ ancillas
	TGroups int
}

// Stats tallies the circuit's Table-I statistics.
func (c *Circuit) Stats() Stats {
	s := Stats{Lines: len(c.Lines), CNOTs: len(c.CNOTs), TGroups: len(c.TGroups)}
	for _, l := range c.Lines {
		switch l.Init {
		case InjectY:
			s.NumY++
		case InjectA:
			s.NumA++
		}
	}
	return s
}

// newLine appends a line and returns its ID.
func (c *Circuit) newLine(init InitKind, meas MeasKind, label string, qubit int) int {
	id := len(c.Lines)
	c.Lines = append(c.Lines, Line{ID: id, Init: init, Meas: meas, Label: label, Qubit: qubit})
	return id
}

// addCNOT appends a CNOT and returns its ID.
func (c *Circuit) addCNOT(control, target int) int {
	id := len(c.CNOTs)
	c.CNOTs = append(c.CNOTs, CNOT{ID: id, Control: control, Target: target})
	return id
}

// FromDecomposed converts a decomposed {CNOT,P,V,T} circuit (plus
// frame-tracked NOT/Z markers) into ICM form. It returns an error if the
// circuit contains a gate outside the TQEC-supported set.
func FromDecomposed(dc *qc.Circuit) (*Circuit, error) {
	if err := dc.Validate(); err != nil {
		return nil, fmt.Errorf("icm: input invalid: %w", err)
	}
	c := &Circuit{
		Name:       dc.Name,
		TSL:        map[int][]int{},
		NumLogical: dc.NumQubits(),
	}
	// cur[q] is the line currently carrying logical qubit q.
	cur := make([]int, dc.NumQubits())
	for q := range cur {
		cur[q] = c.newLine(InitZero, MeasOut, dc.Qubits[q], q)
	}
	tSeq := make([]int, dc.NumQubits()) // per-qubit T counter
	for gi, g := range dc.Gates {
		switch g.Kind {
		case qc.GateNOT, qc.GateZ:
			c.Paulis++
		case qc.GateCNOT:
			c.addCNOT(cur[g.Controls[0]], cur[g.Targets[0]])
		case qc.GateP, qc.GatePdag:
			q := g.Targets[0]
			y := c.newLine(InjectY, MeasZ, fmt.Sprintf("p%d.y", gi), -1)
			c.addCNOT(cur[q], y)
		case qc.GateV, qc.GateVdag:
			if len(g.Controls) != 0 {
				return nil, fmt.Errorf("icm: gate %d: controlled V must be decomposed first", gi)
			}
			q := g.Targets[0]
			y := c.newLine(InjectY, MeasX, fmt.Sprintf("v%d.y", gi), -1)
			c.addCNOT(y, cur[q])
		case qc.GateT, qc.GateTdag:
			c.lowerT(gi, g.Targets[0], cur, tSeq)
		default:
			return nil, fmt.Errorf("icm: gate %d has non-ICM kind %v (run decompose first)", gi, g.Kind)
		}
	}
	return c, nil
}

// lowerT expands one T (or T†) gate into its teleportation block: five new
// lines, six CNOTs and a TGroup carrying the time-ordering constraint. The
// logical qubit continues on the block's last workspace line.
func (c *Circuit) lowerT(gi, q int, cur, tSeq []int) {
	in := cur[q]
	a := c.newLine(InjectA, MeasX, fmt.Sprintf("t%d.a", gi), -1)
	y := c.newLine(InjectY, MeasX, fmt.Sprintf("t%d.y", gi), -1)
	w1 := c.newLine(InitZero, MeasX, fmt.Sprintf("t%d.w1", gi), -1)
	w2 := c.newLine(InitPlus, MeasZ, fmt.Sprintf("t%d.w2", gi), -1)
	w3 := c.newLine(InitZero, MeasOut, fmt.Sprintf("t%d.w3", gi), q)

	g := TGroup{
		ID:            len(c.TGroups),
		Qubit:         q,
		Seq:           tSeq[q],
		ZMeasLine:     in,
		TeleportLines: [4]int{a, y, w1, w2},
	}
	tSeq[q]++
	g.CNOTs = append(g.CNOTs,
		c.addCNOT(in, a),
		c.addCNOT(a, w1),
		c.addCNOT(w1, y),
		c.addCNOT(y, w2),
		c.addCNOT(w2, w3),
		c.addCNOT(in, w3),
	)
	// The input line is consumed: its Z measurement is the time-ordered
	// first measurement of the block.
	c.Lines[in].Meas = MeasZ
	cur[q] = w3
	c.TGroups = append(c.TGroups, g)
	c.TSL[q] = append(c.TSL[q], g.ID)
}

// Validate checks internal consistency: line/CNOT ID ranges, TGroup line
// references, and that TSLs are ordered by Seq.
func (c *Circuit) Validate() error {
	for i, l := range c.Lines {
		if l.ID != i {
			return fmt.Errorf("line %d has ID %d", i, l.ID)
		}
	}
	for i, g := range c.CNOTs {
		if g.ID != i {
			return fmt.Errorf("cnot %d has ID %d", i, g.ID)
		}
		if g.Control < 0 || g.Control >= len(c.Lines) || g.Target < 0 || g.Target >= len(c.Lines) {
			return fmt.Errorf("cnot %d references missing line", i)
		}
		if g.Control == g.Target {
			return fmt.Errorf("cnot %d is a self-loop", i)
		}
	}
	for i, tg := range c.TGroups {
		if tg.ID != i {
			return fmt.Errorf("tgroup %d has ID %d", i, tg.ID)
		}
		if tg.ZMeasLine < 0 || tg.ZMeasLine >= len(c.Lines) {
			return fmt.Errorf("tgroup %d: bad Z line", i)
		}
		for _, l := range tg.TeleportLines {
			if l < 0 || l >= len(c.Lines) {
				return fmt.Errorf("tgroup %d: bad teleport line", i)
			}
		}
		if len(tg.CNOTs) != 6 {
			return fmt.Errorf("tgroup %d: %d CNOTs, want 6", i, len(tg.CNOTs))
		}
	}
	for q, ids := range c.TSL {
		for k, id := range ids {
			if id < 0 || id >= len(c.TGroups) {
				return fmt.Errorf("tsl[%d][%d]: bad group id %d", q, k, id)
			}
			tg := c.TGroups[id]
			if tg.Qubit != q {
				return fmt.Errorf("tsl[%d]: group %d belongs to qubit %d", q, id, tg.Qubit)
			}
			if tg.Seq != k {
				return fmt.Errorf("tsl[%d][%d]: group %d has Seq %d", q, k, id, tg.Seq)
			}
		}
	}
	return nil
}

// LinesOf returns the CNOT IDs touching each line, in program order.
func (c *Circuit) LinesOf() [][]int {
	per := make([][]int, len(c.Lines))
	for _, g := range c.CNOTs {
		per[g.Control] = append(per[g.Control], g.ID)
		per[g.Target] = append(per[g.Target], g.ID)
	}
	return per
}

// ScheduleASAP assigns each CNOT the earliest time slot consistent with
// program order on every line (two CNOTs sharing a line cannot share a
// slot). It returns the slot of each CNOT and the schedule depth. This is
// the causal-graph/left-edge depth of Section I-B.
func (c *Circuit) ScheduleASAP() (slots []int, depth int) {
	slots = make([]int, len(c.CNOTs))
	ready := make([]int, len(c.Lines)) // first free slot per line
	for _, g := range c.CNOTs {
		s := ready[g.Control]
		if ready[g.Target] > s {
			s = ready[g.Target]
		}
		slots[g.ID] = s
		ready[g.Control] = s + 1
		ready[g.Target] = s + 1
		if s+1 > depth {
			depth = s + 1
		}
	}
	return slots, depth
}
