// Package ctxpkg is the tqeclint golden fixture for the ctxflow analyzer:
// context-first signatures, no library-minted roots, and forwarding to
// *Context variants when one exists.
package ctxpkg

import "context"

// Work and WorkContext form the pair the forwarding check keys on.
func Work() {}

func WorkContext(ctx context.Context) {
	<-ctx.Done()
}

func bad(name string, ctx context.Context) { // want `context.Context must be the first parameter`
	WorkContext(ctx)
}

func badLit() {
	f := func(n int, ctx context.Context) { // want `context.Context must be the first parameter`
		WorkContext(ctx)
	}
	f(1, context.TODO()) // want `context.TODO\(\) in library code`
}

func root() {
	ctx := context.Background() // want `context.Background\(\) in library code`
	WorkContext(ctx)
}

func forward(ctx context.Context) {
	Work() // want `ctx is in scope but Work drops it`
	WorkContext(ctx)
}

func entry() {
	//lint:ignore ctxflow fixture: sanctioned no-context entry point
	WorkContext(context.Background())
}
