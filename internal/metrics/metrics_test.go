package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestBreakdownAccumulates(t *testing.T) {
	b := NewBreakdown()
	b.Add(StageBridging, 100*time.Millisecond)
	b.Add(StagePlacement, 300*time.Millisecond)
	b.Add(StageBridging, 100*time.Millisecond)
	if b.Get(StageBridging) != 200*time.Millisecond {
		t.Fatalf("bridging: %v", b.Get(StageBridging))
	}
	if b.Total() != 500*time.Millisecond {
		t.Fatalf("total: %v", b.Total())
	}
	if r := b.Ratio(StageBridging); r < 39.9 || r > 40.1 {
		t.Fatalf("ratio: %v", r)
	}
}

func TestBreakdownTime(t *testing.T) {
	b := NewBreakdown()
	b.Time(StageRouting, func() { time.Sleep(time.Millisecond) })
	if b.Get(StageRouting) <= 0 {
		t.Fatal("no time charged")
	}
}

func TestBreakdownEmpty(t *testing.T) {
	b := NewBreakdown()
	if b.Total() != 0 {
		t.Fatal("empty total")
	}
	if b.Ratio(StagePlacement) != 0 {
		t.Fatal("empty ratio should be 0, not NaN")
	}
	if len(b.Stages()) != 0 {
		t.Fatal("no stages expected")
	}
}

func TestBreakdownStagesOrder(t *testing.T) {
	b := NewBreakdown()
	b.Add("x", time.Second)
	b.Add("a", time.Second)
	b.Add("x", time.Second)
	got := b.Stages()
	if len(got) != 2 || got[0] != "x" || got[1] != "a" {
		t.Fatalf("stages: %v", got)
	}
}

func TestBreakdownString(t *testing.T) {
	b := NewBreakdown()
	b.Add(StagePlacement, time.Second)
	s := b.String()
	if !strings.Contains(s, StagePlacement) || !strings.Contains(s, "total") {
		t.Fatalf("string: %q", s)
	}
}

func TestDims(t *testing.T) {
	d := Dims{W: 45, H: 24, D: 23}
	if d.Volume() != 24840 {
		t.Fatalf("volume: %d", d.Volume())
	}
	if d.String() != "45×24×23=24840" {
		t.Fatalf("string: %s", d.String())
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 4) != 2.5 {
		t.Fatal("ratio")
	}
	if Ratio(10, 0) != 0 {
		t.Fatal("zero base should give 0")
	}
}
