package decompose

import (
	"testing"

	"repro/internal/icm"
	"repro/internal/qc"
	"repro/internal/sim"
)

// lowerToICM decomposes the circuit and converts it to ICM form, failing
// the test on any stage error. It returns both artifacts so tests can
// check semantic equivalence (via sim) and the teleportation footprint
// (via icm.Stats) of the same lowering.
func lowerToICM(t *testing.T, c *qc.Circuit) (*Result, *icm.Circuit) {
	t.Helper()
	r, err := Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := icm.FromDecomposed(r.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if err := ic.Validate(); err != nil {
		t.Fatalf("ICM invalid: %v", err)
	}
	return r, ic
}

// checkGate verifies one gate's full lowering: the decomposed circuit
// implements the original unitary (up to global phase, on clean-ancilla
// inputs), and the ICM conversion of the decomposition has exactly the
// teleportation footprint the paper's Figs. 8/13 accounting predicts.
func checkGate(t *testing.T, name string, n int, g qc.Gate, wantY, wantA, wantCNOTs, wantTGroups int) {
	t.Helper()
	c := qc.New(name, n)
	c.Append(g)
	r, ic := lowerToICM(t, c)

	nq := len(r.Circuit.Qubits)
	padded := c.Clone()
	padded.Qubits = append([]string(nil), r.Circuit.Qubits...)
	ok, err := sim.EquivalentOnCleanAncillas(nq, c.NumQubits(), padded, r.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("%s: decomposition is not unitarily equivalent", name)
	}

	s := ic.Stats()
	if s.NumY != wantY || s.NumA != wantA || s.CNOTs != wantCNOTs || s.TGroups != wantTGroups {
		t.Fatalf("%s: ICM footprint Y=%d A=%d CNOTs=%d TGroups=%d, want Y=%d A=%d CNOTs=%d TGroups=%d",
			name, s.NumY, s.NumA, s.CNOTs, s.TGroups, wantY, wantA, wantCNOTs, wantTGroups)
	}
	// Every line beyond the logical qubits must be an injection or
	// workspace line created by the teleportation blocks.
	if s.Lines != nq+4*wantA+wantY {
		// T contributes 5 lines (1 A + 1 Y + 3 workspace); P/V contribute
		// 1 Y line each. wantY counts Y lines from both sources.
		t.Fatalf("%s: ICM has %d lines for %d logical qubits (Y=%d A=%d)",
			name, s.Lines, nq, s.NumY, s.NumA)
	}
}

// TestTQECSetThroughICM covers every gate of the TQEC-native set
// {CNOT, P, V, T} (and the adjoints that decompose identically): sim
// equivalence of the decomposition plus the exact ICM ancilla/CNOT
// footprint of the gate teleportation.
func TestTQECSetThroughICM(t *testing.T) {
	// CNOT: native, one ICM CNOT, no ancillas.
	checkGate(t, "cnot", 2, qc.CNOT(0, 1), 0, 0, 1, 0)
	// P (and P†): one |Y⟩ ancilla, one CNOT (Fig. 13).
	checkGate(t, "p", 1, qc.P(0), 1, 0, 1, 0)
	checkGate(t, "pdag", 1, qc.Gate{Kind: qc.GatePdag, Targets: []int{0}}, 1, 0, 1, 0)
	// V (and V†): one |Y⟩ ancilla, one CNOT.
	checkGate(t, "v", 1, qc.V(0), 1, 0, 1, 0)
	checkGate(t, "vdag", 1, qc.Gate{Kind: qc.GateVdag, Targets: []int{0}}, 1, 0, 1, 0)
	// T (and T†): one |A⟩, one |Y⟩ for the P-correction, six CNOTs, one
	// time-ordered TGroup (Fig. 8(a)).
	checkGate(t, "t", 1, qc.T(0), 1, 1, 6, 1)
	checkGate(t, "tdag", 1, qc.Tdag(0), 1, 1, 6, 1)
	// H = P·V·P: three |Y⟩ ancillas, three CNOTs.
	checkGate(t, "h", 1, qc.H(0), 3, 0, 3, 0)
}

// TestPauliMarkersThroughICM pins the Pauli-frame contract: NOT and Z are
// kept as markers of their own kind, cost nothing in the ICM conversion,
// and stay semantically faithful. Z used to be folded into a NOT marker,
// which silently turned Z into X — caught by the sim differential.
func TestPauliMarkersThroughICM(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    qc.Gate
	}{
		{"not", qc.NOT(0)},
		{"z", qc.Z(0)},
	} {
		c := qc.New(tc.name, 1)
		c.Append(tc.g)
		r, ic := lowerToICM(t, c)
		if got := len(r.Circuit.Gates); got != 1 || r.Circuit.Gates[0].Kind != tc.g.Kind {
			t.Fatalf("%s: marker not preserved: %v", tc.name, r.Circuit.Gates)
		}
		s := ic.Stats()
		if s.NumY != 0 || s.NumA != 0 || s.CNOTs != 0 {
			t.Fatalf("%s: Pauli marker has nonzero ICM cost: %+v", tc.name, s)
		}
		if ic.Paulis != 1 {
			t.Fatalf("%s: Paulis = %d, want 1", tc.name, ic.Paulis)
		}
		st, err := Count(r.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		if st.Paulis != 1 {
			t.Fatalf("%s: Count.Paulis = %d, want 1", tc.name, st.Paulis)
		}
	}
}

// TestZDecompositionEquivalence is the regression for the Z-as-NOT bug:
// a circuit applying Z inside a superposition distinguishes X from Z, so
// the pre-fix lowering (Z folded into a NOT marker) fails this check.
func TestZDecompositionEquivalence(t *testing.T) {
	c := qc.New("hz", 1)
	c.Append(qc.H(0), qc.Z(0), qc.H(0))
	checkEquivalent(t, c)

	// And mixed into a multi-qubit circuit.
	m := qc.New("mixz", 2)
	m.Append(qc.H(0), qc.Z(0), qc.CNOT(0, 1), qc.Z(1), qc.H(1))
	checkEquivalent(t, m)
}
