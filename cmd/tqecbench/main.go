// Command tqecbench regenerates the paper's experimental tables and
// figure-shaped results.
//
// Usage:
//
//	tqecbench [-table N | -fig name | -all] [-benchmarks a,b,c] [-full]
//	          [-iters N] [-seed S] [-no-ablations] [-timeout 10m]
//
// Tables: 1 (benchmark statistics), 2 (space-time volumes vs canonical and
// [22]), 3 (conference-version ablation), 4 (dimensions), 5 (bridging
// ablation), 6 (runtime breakdown). Figures: "motivation" (Fig. 4/5),
// "boxes" (Fig. 6/7), "friendnet" (Fig. 19).
//
// The default benchmark set holds the two smallest circuits; -full runs
// all eight (the paper spends over an hour of workstation time there).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
	"repro/tqec"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-6)")
	fig := flag.String("fig", "", "regenerate one figure: motivation, boxes, friendnet")
	all := flag.Bool("all", false, "regenerate every table and figure")
	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark names")
	full := flag.Bool("full", false, "run all eight paper benchmarks")
	iters := flag.Int("iters", 0, "SA move budget (0 = auto: 200 per node)")
	seed := flag.Int64("seed", 1, "random seed")
	noAblations := flag.Bool("no-ablations", false, "skip the no-bridging/conference runs")
	timeout := flag.Duration("timeout", 0, "abort each benchmark compilation after this long (0 = no limit)")
	flag.Parse()

	if *table == 0 && *fig == "" && !*all {
		*all = true
	}

	cfg := harness.DefaultConfig()
	if *full {
		cfg = harness.FullConfig()
	}
	if *benchmarks != "" {
		cfg.Benchmarks = strings.Split(*benchmarks, ",")
	}
	cfg.PlaceIterations = *iters
	cfg.Seed = *seed
	cfg.Timeout = *timeout
	if *noAblations {
		cfg.Ablations = false
	}
	// Tables III and V need the ablation runs.
	if (*table == 3 || *table == 5) && !cfg.Ablations {
		fmt.Fprintln(os.Stderr, "tables 3 and 5 need ablations; ignoring -no-ablations")
		cfg.Ablations = true
	}

	out := os.Stdout
	if *fig != "" || *all {
		if err := figures(*fig, *all, *seed, cfg); err != nil {
			fatal(err)
		}
		if !*all && *table == 0 {
			return
		}
	}

	fmt.Fprintf(out, "Running %d benchmark(s): %s (ablations: %v)\n\n",
		len(cfg.Benchmarks), strings.Join(cfg.Benchmarks, ", "), cfg.Ablations)
	rows, err := harness.Run(cfg)
	if err != nil {
		fatal(err)
	}
	printed := false
	show := func(n int, f func() error) {
		if *all || *table == n {
			if printed {
				fmt.Fprintln(out)
			}
			if err := f(); err != nil {
				fatal(err)
			}
			printed = true
		}
	}
	show(1, func() error { return harness.Table1(out, rows) })
	show(2, func() error { return harness.Table2(out, rows) })
	show(3, func() error { return harness.Table3(out, rows) })
	show(4, func() error { return harness.Table4(out, rows) })
	show(5, func() error { return harness.Table5(out, rows) })
	show(6, func() error { return harness.Table6(out, rows) })
	if *all {
		fmt.Fprintln(out)
		if err := harness.Summary(out, rows); err != nil {
			fatal(err)
		}
	}
}

func figures(which string, all bool, seed int64, cfg harness.Config) error {
	out := os.Stdout
	if all || which == "motivation" {
		if err := harness.FigMotivation(out, seed); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if all || which == "boxes" {
		if err := harness.FigBoxes(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if all || which == "friendnet" {
		name := cfg.Benchmarks[0]
		if err := harness.FigFriendNet(out, name, seed); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	switch which {
	case "", "motivation", "boxes", "friendnet":
		return nil
	default:
		return fmt.Errorf("unknown figure %q", which)
	}
}

func fatal(err error) {
	if se, ok := tqec.AsStageError(err); ok {
		switch {
		case errors.Is(err, tqec.ErrCanceled):
			fmt.Fprintf(os.Stderr, "tqecbench: stage %s aborted (timed out?): %v\n", se.Stage, se.Err)
		case errors.Is(err, tqec.ErrPanic):
			fmt.Fprintf(os.Stderr, "tqecbench: stage %s crashed: %v\n%s", se.Stage, se.Err, se.Stack)
		default:
			fmt.Fprintf(os.Stderr, "tqecbench: stage %s failed: %v\n", se.Stage, se.Err)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "tqecbench:", err)
	os.Exit(1)
}
