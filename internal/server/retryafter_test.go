package server

import (
	"net/http/httptest"
	"testing"
	"time"
)

// TestRetryAfterFloor is the regression for the Retry-After: 0 bug: a shed
// response (429/503) whose backoff estimate is zero or sub-second must
// still advertise at least one whole second. RFC 9110 clients treat 0 (and
// our clients treated a missing header) as "retry immediately", which
// hammered the very breaker or queue that was shedding load — the
// queue-full 429, the draining 503 and a breaker that raced closed all
// carried a zero estimate.
func TestRetryAfterFloor(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name       string
		ae         *apiError
		wantHeader string
	}{
		{"queue-full 429 with no estimate", &apiError{Status: 429, Body: ErrorBody{Message: "queue full"}}, "1"},
		{"draining 503 with no estimate", &apiError{Status: 503, Body: ErrorBody{Message: "draining"}}, "1"},
		{"breaker 503 raced closed", &apiError{Status: 503, Body: ErrorBody{Message: "breaker_open"}, RetryAfter: 0}, "1"},
		{"sub-second 429 estimate", &apiError{Status: 429, Body: ErrorBody{Message: "deadline"}, RetryAfter: 300 * time.Millisecond}, "1"},
		{"rounded-up 503 estimate", &apiError{Status: 503, Body: ErrorBody{Message: "breaker_open"}, RetryAfter: 2500 * time.Millisecond}, "3"},
		{"422 carries no hint", &apiError{Status: 422, Body: ErrorBody{Message: "unroutable"}}, ""},
		{"504 carries no hint", &apiError{Status: 504, Body: ErrorBody{Message: "deadline exceeded"}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := httptest.NewRecorder()
			s.writeError(w, tc.ae)
			if got := w.Header().Get("Retry-After"); got != tc.wantHeader {
				t.Fatalf("Retry-After = %q, want %q (status %d, estimate %v)",
					got, tc.wantHeader, tc.ae.Status, tc.ae.RetryAfter)
			}
			if w.Code != tc.ae.Status {
				t.Fatalf("status = %d, want %d", w.Code, tc.ae.Status)
			}
		})
	}
}
