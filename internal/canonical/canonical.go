// Package canonical builds the canonical 3D geometric description of an
// ICM circuit (Section I and Fig. 4 of the paper).
//
// In the canonical form every ICM line becomes a pair of primal defect
// rails stretched along the time (x) axis, lines are stacked along the
// width (y) axis, and each CNOT occupies three consecutive time units in
// which its ancillary dual loop braids the control rail pair and threads
// the target rail pair. With L lines and C CNOTs the canonical description
// therefore measures D×W×H = 3C × L × 2, the volume baseline of Tables II
// and IV ("Canonical" columns).
package canonical

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/icm"
)

// SlotWidth is the number of time units one CNOT occupies in canonical form.
const SlotWidth = 3

// Description is the canonical geometric description of an ICM circuit.
type Description struct {
	ICM *icm.Circuit
	// Slot assigns each CNOT its sequential canonical time slot (slot j
	// occupies x ∈ [3j, 3j+3)).
	Slot []int
	// FirstSlot and LastSlot bound each line's lifetime: a line's primal
	// rails run from its initialization just before its first CNOT to its
	// measurement just after its last CNOT. Lines with no CNOT have
	// FirstSlot > LastSlot.
	FirstSlot, LastSlot []int
	// Bounds is the occupied bounding box.
	Bounds geom.Box
}

// Build lays out ic in canonical form: CNOT j at slot j, line i at y = i.
func Build(ic *icm.Circuit) (*Description, error) {
	if err := ic.Validate(); err != nil {
		return nil, fmt.Errorf("canonical: %w", err)
	}
	d := &Description{
		ICM:       ic,
		Slot:      make([]int, len(ic.CNOTs)),
		FirstSlot: make([]int, len(ic.Lines)),
		LastSlot:  make([]int, len(ic.Lines)),
	}
	for i := range ic.Lines {
		d.FirstSlot[i] = len(ic.CNOTs) // sentinel: after everything
		d.LastSlot[i] = -1
	}
	for i, g := range ic.CNOTs {
		d.Slot[i] = i
		for _, ln := range []int{g.Control, g.Target} {
			if i < d.FirstSlot[ln] {
				d.FirstSlot[ln] = i
			}
			if i > d.LastSlot[ln] {
				d.LastSlot[ln] = i
			}
		}
	}
	depth := SlotWidth * len(ic.CNOTs)
	if depth == 0 {
		depth = 1 // a gateless circuit still occupies its I/M column
	}
	d.Bounds = geom.NewBox(0, 0, 0, depth, len(ic.Lines), 2)
	return d, nil
}

// Dims returns the width (y), height (z) and depth (x = time) extents,
// matching the W/H/D columns of Table IV.
func (d *Description) Dims() (w, h, depth int) {
	return d.Bounds.Dy(), d.Bounds.Dz(), d.Bounds.Dx()
}

// Volume returns the space-time volume of the canonical description.
func (d *Description) Volume() int { return d.Bounds.Volume() }

// LineRail returns the box occupied by rail z ∈ {0,1} of line i.
func (d *Description) LineRail(line, rail int) geom.Box {
	return geom.NewBox(0, line, rail, d.Bounds.Dx(), line+1, rail+1)
}

// LoopSpan returns the inclusive line range [lo, hi] penetrated by the dual
// loop of CNOT id: every line between (and including) control and target.
// Intermediate rails pass through the loop; modularization keeps those
// crossings as dual segments of the corresponding modules (Section II-C).
func (d *Description) LoopSpan(id int) (lo, hi int) {
	g := d.ICM.CNOTs[id]
	lo, hi = g.Control, g.Target
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo, hi
}

// Alive reports whether line ln physically exists at slot s: its primal
// rails run from just before its first CNOT to just after its last.
func (d *Description) Alive(ln, s int) bool {
	return d.FirstSlot[ln] <= s && s <= d.LastSlot[ln]
}

// Penetrations returns the lines whose primal loops the dual loop of CNOT
// id passes through: its control and target, plus every line between them
// that is alive at the CNOT's slot (dead lines leave no rails to cross).
// These are exactly the dual segments modularization keeps (Section II-C).
func (d *Description) Penetrations(id int) []int {
	lo, hi := d.LoopSpan(id)
	s := d.Slot[id]
	g := d.ICM.CNOTs[id]
	out := make([]int, 0, 4)
	for ln := lo; ln <= hi; ln++ {
		if ln == g.Control || ln == g.Target || d.Alive(ln, s) {
			out = append(out, ln)
		}
	}
	return out
}

// LoopBox returns the bounding box of the dual loop of CNOT id in the
// canonical layout.
func (d *Description) LoopBox(id int) geom.Box {
	lo, hi := d.LoopSpan(id)
	x0 := d.Slot[id] * SlotWidth
	return geom.NewBox(x0, lo, 0, x0+SlotWidth, hi+1, 2)
}

// TotalVolume returns the canonical volume plus the lower-bound volume of
// the required distillation boxes (the "Canonical" column of Table II adds
// Vol_|Y⟩ + Vol_|A⟩ to the synthesized volume).
func (d *Description) TotalVolume(boxVolume int) int {
	return d.Volume() + boxVolume
}
