package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockCheck enforces mutex discipline across the module:
//
//   - no mutex (or struct containing one) copied through a value receiver
//     or value parameter;
//   - a Lock must be released on every path out of the function (an
//     explicit Unlock on each path or a deferred one);
//   - between a Lock and a non-deferred Unlock, no call that can panic
//     (an explicit panic in the callee's summary, or an opaque call
//     through a function value) — a panic there leaks the lock forever;
//   - no inverted acquisition order: if the call graph shows mutex A held
//     while B is acquired anywhere in the module, no other path may
//     acquire A while holding B.
//
// The path checks run on a bounded per-function CFG approximation
// (branches explored independently, loop bodies once); functions that
// exceed the path budget are skipped rather than guessed at. Acquisition
// pairs come from the interprocedural fact layer, so an inversion split
// across two packages is still caught. Lock identities anchor to their
// owning type ("pkg.Type.mu"), so the discipline is per-field, not
// per-instance — exactly the granularity a lock hierarchy is designed at.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "mutexes: no value copies, every Lock released on every path, no panic-capable call inside a non-deferred critical section, no inverted acquisition order",
	Run:  runLockCheck,
}

// lockEvent classifies one call as a mutex operation.
type lockEvent struct {
	id      string
	acquire bool
	read    bool
}

// mutexOp resolves a call to a lock event, nil when the call is not a
// sync.Mutex/RWMutex Lock/Unlock family method.
func mutexOp(pkg *Package, call *ast.CallExpr) *lockEvent {
	fn := calleeFunc(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	_, recvName, ok := namedType(sig.Recv().Type())
	if !ok || (recvName != "Mutex" && recvName != "RWMutex") {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id := syncObjID(pkg, sel.X)
	if id == "" {
		return nil
	}
	switch fn.Name() {
	case "Lock":
		return &lockEvent{id: id, acquire: true}
	case "RLock":
		return &lockEvent{id: id, acquire: true, read: true}
	case "Unlock":
		return &lockEvent{id: id}
	case "RUnlock":
		return &lockEvent{id: id, read: true}
	}
	return nil
}

// lockSummary computes the Locks and LockPairs facts for one function: a
// source-order approximation of which mutexes are held when others (or
// callees that lock) are reached. Deferred unlocks keep their mutex held
// for pairing purposes — that is exactly when nested acquisition happens.
func lockSummary(pkg *Package, store *FactStore, graph *CallGraph, fd *ast.FuncDecl) ([]string, []LockPair) {
	var held []string
	locks := map[string]bool{}
	pairSeen := map[LockPair]bool{}
	var pairs []LockPair

	addPair := func(p LockPair) {
		if !pairSeen[p] && len(pairs) < 128 {
			pairSeen[p] = true
			pairs = append(pairs, p)
		}
	}
	pos := func(p token.Pos) (string, int) {
		position := pkg.Fset.Position(p)
		return position.Filename, position.Line
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock releases at exit; the mutex stays held
			// for everything after, so do not pop it here. Other
			// deferred calls run at exit too — their lock behaviour is
			// out of the source-order model.
			return false
		case *ast.GoStmt:
			// The spawned body runs on its own stack with its own lock
			// state.
			return false
		case *ast.CallExpr:
			if ev := mutexOp(pkg, n); ev != nil {
				if ev.acquire {
					file, line := pos(n.Pos())
					for _, h := range held {
						if h != ev.id {
							addPair(LockPair{First: h, Second: ev.id, File: file, Line: line})
						}
					}
					held = append(held, ev.id)
					locks[ev.id] = true
				} else {
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == ev.id {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return true
			}
			if graph == nil {
				return true
			}
			for _, cid := range graph.CalleeIDs(pkg.Info, n) {
				facts := store.Get(cid)
				if facts == nil {
					continue
				}
				for _, l := range facts.Locks {
					locks[l] = true
					file, line := pos(n.Pos())
					for _, h := range held {
						if h != l {
							addPair(LockPair{First: h, Second: l, File: file, Line: line})
						}
					}
				}
				// Callee-internal orderings bubble up with their
				// original positions so the module-wide inversion check
				// sees one flat pair set.
				for _, p := range facts.LockPairs {
					addPair(p)
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)

	out := make([]string, 0, len(locks))
	for l := range locks {
		out = append(out, l)
	}
	sort.Strings(out)
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if a.First != b.First {
			return a.First < b.First
		}
		if a.Second != b.Second {
			return a.Second < b.Second
		}
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return out, pairs
}

func runLockCheck(pass *Pass) {
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkValueReceiver(pass, fd)
			if fd.Body != nil {
				checkLockPaths(pass, fd)
			}
		}
	}
	checkLockOrder(pass)
}

// mutexField reports whether t is a struct type with a direct or embedded
// sync.Mutex/RWMutex field.
func mutexField(t types.Type) bool {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		path, name, ok := namedType(st.Field(i).Type())
		if ok && path == "sync" && (name == "Mutex" || name == "RWMutex") {
			// A *sync.Mutex field is a reference; copying the struct
			// shares the lock instead of duplicating it.
			if _, isPtr := st.Field(i).Type().(*types.Pointer); !isPtr {
				return true
			}
		}
	}
	return false
}

// checkValueReceiver flags methods and parameters that copy a
// mutex-containing struct by value: the copy's lock state diverges from
// the original's, so both "locked" copies can enter the critical section.
func checkValueReceiver(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := pass.TypeOf(fd.Recv.List[0].Type)
		if t != nil {
			if _, isPtr := t.(*types.Pointer); !isPtr && mutexField(t) {
				pass.Reportf(fd.Recv.Pos(), "method %s copies its receiver's mutex: %s contains a lock, use a pointer receiver", fd.Name.Name, types.TypeString(t, nil))
			}
		}
	}
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.(*types.Pointer); !isPtr && mutexField(t) {
			pass.Reportf(field.Pos(), "parameter copies a mutex-containing struct by value: pass *%s", types.TypeString(t, nil))
		}
	}
}

// pathBudget bounds the branch exploration per function; functions more
// branchy than this are skipped (silence, not guessing).
const pathBudget = 512

// lockState is the explorer's per-path state.
type lockState struct {
	held     map[string][]token.Pos // id -> positions of outstanding Locks
	deferred map[string]int         // id -> count of scheduled deferred Unlocks
}

func (s lockState) clone() lockState {
	n := lockState{held: map[string][]token.Pos{}, deferred: map[string]int{}}
	for k, v := range s.held {
		n.held[k] = append([]token.Pos(nil), v...)
	}
	for k, v := range s.deferred {
		n.deferred[k] = v
	}
	return n
}

// lockWalker explores a function's paths tracking lock state.
type lockWalker struct {
	pass     *Pass
	paths    int
	aborted  bool
	missing  map[token.Pos]bool // Lock positions already reported
	panicky  map[token.Pos]bool // risky-call positions already reported
	findings []Finding
}

// checkLockPaths runs the bounded path exploration over one function and
// reports through the pass unless the budget was blown.
func checkLockPaths(pass *Pass, fd *ast.FuncDecl) {
	w := &lockWalker{
		pass:    pass,
		missing: map[token.Pos]bool{},
		panicky: map[token.Pos]bool{},
	}
	st := lockState{held: map[string][]token.Pos{}, deferred: map[string]int{}}
	w.walkSeq(fd.Body.List, 0, st, true)
	if w.aborted {
		return
	}
	for pos := range w.missing {
		pass.Reportf(pos, "Lock is not released on every path out of %s: add an Unlock on each return or defer it", fd.Name.Name)
	}
	for pos := range w.panicky {
		pass.Reportf(pos, "call can panic while a mutex is held without a deferred Unlock: the lock would leak; defer the Unlock")
	}
}

// shortFile trims a path to its base for messages.
func shortFile(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// walkSeq explores stmts[idx:]; exit says whether falling off the end is a
// function exit (true at the top level, false inside loop bodies whose
// fallthrough continues the function).
func (w *lockWalker) walkSeq(stmts []ast.Stmt, idx int, st lockState, exit bool) {
	if w.aborted {
		return
	}
	for i := idx; i < len(stmts); i++ {
		if w.aborted {
			return
		}
		s := stmts[i]
		switch s := s.(type) {
		case *ast.ExprStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
			w.simpleStmt(s, &st)
		case *ast.DeferStmt:
			if ev := mutexOp(w.pass.Pkg, s.Call); ev != nil && !ev.acquire {
				st.deferred[ev.id]++
			}
		case *ast.ReturnStmt:
			w.simpleStmt(s, &st)
			w.exitCheck(st)
			return
		case *ast.BranchStmt:
			// break/continue/goto leave the modeled region; ending the
			// path silently avoids false "missing unlock" reports from
			// loop-escape idioms.
			return
		case *ast.BlockStmt:
			w.branch([]ast.Stmt{}, s.List, stmts, i+1, st, exit)
			return
		case *ast.IfStmt:
			if s.Init != nil {
				w.simpleStmt(s.Init, &st)
			}
			var elseList []ast.Stmt
			if s.Else != nil {
				elseList = []ast.Stmt{s.Else}
			}
			w.branch(s.Body.List, elseList, stmts, i+1, st, exit)
			return
		case *ast.ForStmt:
			if s.Init != nil {
				w.simpleStmt(s.Init, &st)
			}
			w.branch(s.Body.List, []ast.Stmt{}, stmts, i+1, st, exit)
			return
		case *ast.RangeStmt:
			w.branch(s.Body.List, []ast.Stmt{}, stmts, i+1, st, exit)
			return
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			w.branchCases(s, stmts, i+1, st, exit)
			return
		case *ast.LabeledStmt:
			stmts = append(append(append([]ast.Stmt{}, stmts[:i]...), s.Stmt), stmts[i+1:]...)
			w.walkSeq(stmts, i, st, exit)
			return
		case *ast.GoStmt:
			// Spawned body has its own stack; checked separately.
		default:
			w.simpleStmt(s, &st)
		}
	}
	if exit {
		w.exitCheck(st)
	}
}

// branch explores thenList+rest and elseList+rest as separate paths.
func (w *lockWalker) branch(thenList, elseList []ast.Stmt, rest []ast.Stmt, restIdx int, st lockState, exit bool) {
	for _, list := range [][]ast.Stmt{thenList, elseList} {
		if w.bumpPath() {
			return
		}
		sub := st.clone()
		combined := append(append([]ast.Stmt{}, list...), rest[restIdx:]...)
		w.walkSeq(combined, 0, sub, exit)
	}
}

// branchCases explores every case body of a switch/select plus the
// no-case fallthrough when there is no default clause.
func (w *lockWalker) branchCases(s ast.Stmt, rest []ast.Stmt, restIdx int, st lockState, exit bool) {
	var bodies [][]ast.Stmt
	hasDefault := false
	collect := func(body *ast.BlockStmt, init ast.Stmt) {
		if init != nil {
			w.simpleStmt(init, &st)
		}
		for _, c := range body.List {
			switch c := c.(type) {
			case *ast.CaseClause:
				bodies = append(bodies, c.Body)
				if c.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				var prefix []ast.Stmt
				if c.Comm != nil {
					prefix = []ast.Stmt{c.Comm}
				}
				bodies = append(bodies, append(prefix, c.Body...))
				if c.Comm == nil {
					hasDefault = true
				}
			}
		}
	}
	switch s := s.(type) {
	case *ast.SwitchStmt:
		collect(s.Body, s.Init)
	case *ast.TypeSwitchStmt:
		collect(s.Body, s.Init)
	case *ast.SelectStmt:
		collect(s.Body, nil)
		hasDefault = true // a select blocks; some case always runs
	}
	if !hasDefault {
		bodies = append(bodies, nil)
	}
	for _, body := range bodies {
		if w.bumpPath() {
			return
		}
		sub := st.clone()
		combined := append(append([]ast.Stmt{}, body...), rest[restIdx:]...)
		w.walkSeq(combined, 0, sub, exit)
	}
}

func (w *lockWalker) bumpPath() bool {
	w.paths++
	if w.paths > pathBudget {
		w.aborted = true
	}
	return w.aborted
}

// simpleStmt applies the lock events and risky-call checks of one
// non-branching statement (nested function literals excluded — their
// bodies run elsewhere).
func (w *lockWalker) simpleStmt(s ast.Stmt, st *lockState) {
	ast.Inspect(s, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ev := mutexOp(w.pass.Pkg, call); ev != nil {
			if ev.acquire {
				st.held[ev.id] = append(st.held[ev.id], call.Pos())
			} else if n := len(st.held[ev.id]); n > 0 {
				st.held[ev.id] = st.held[ev.id][:n-1]
			}
			return true
		}
		if w.riskyCall(call) && w.heldWithoutDefer(*st) {
			w.panicky[call.Pos()] = true
		}
		return true
	})
}

// heldWithoutDefer reports whether any lock is held with fewer scheduled
// deferred unlocks than outstanding acquisitions.
func (w *lockWalker) heldWithoutDefer(st lockState) bool {
	for id, poss := range st.held {
		if len(poss) > st.deferred[id] {
			return true
		}
	}
	return false
}

// riskyCall reports a call that can panic: an opaque call through a
// function value, or a callee whose summary says it panics. In-repo
// static calls without a panic fact are trusted — the nopanic analyzer
// keeps library code panic-free.
func (w *lockWalker) riskyCall(call *ast.CallExpr) bool {
	if w.pass.Graph == nil {
		return false
	}
	fns, dynamic := w.pass.Graph.resolve(w.pass.Pkg.Info, call)
	if dynamic {
		return true
	}
	for _, fn := range fns {
		if facts := w.pass.Facts.Get(funcID(fn)); facts != nil && facts.MayPanic {
			return true
		}
	}
	return false
}

// exitCheck records a finding for every lock still held at a function
// exit beyond its scheduled deferred unlocks.
func (w *lockWalker) exitCheck(st lockState) {
	for id, poss := range st.held {
		excess := len(poss) - st.deferred[id]
		for i := 0; i < excess && i < len(poss); i++ {
			w.missing[poss[i]] = true
		}
	}
}

// checkLockOrder reports inverted acquisition orders. The pair sets come
// from the fact layer, so they span the whole loaded module (plus cached
// facts); each package reports only the pair sites inside itself, keeping
// findings stable under incremental runs.
func checkLockOrder(pass *Pass) {
	pairs := pass.Facts.AllLockPairs()
	type key struct{ a, b string }
	index := map[key][]LockPair{}
	for _, p := range pairs {
		index[key{p.First, p.Second}] = append(index[key{p.First, p.Second}], p)
	}
	reported := map[string]bool{}
	for k, sites := range index {
		inv, ok := index[key{k.b, k.a}]
		if !ok {
			continue
		}
		for _, site := range sites {
			if !pass.Pkg.ownsFile(site.File) {
				continue
			}
			sig := fmt.Sprintf("%s|%s|%s|%d", k.a, k.b, site.File, site.Line)
			if reported[sig] {
				continue
			}
			reported[sig] = true
			other := inv[0]
			pass.reportAt(site.File, site.Line, "lock order inversion: %s acquired while %s is held here, but the reverse order is taken at %s:%d — a concurrent pair can deadlock", k.b, k.a, shortFile(other.File), other.Line)
		}
	}
}
