package zx

import (
	"testing"

	"repro/internal/qc"
	"repro/internal/sim"
)

// decodeFuzzCircuit turns a fuzzer byte stream into a small decomposed
// circuit: two bytes per gate, the first selecting the kind and the
// second the wire(s). The gate count is capped so every decoded circuit
// stays cheap to simulate and to price canonically.
func decodeFuzzCircuit(qubits int, data []byte) *qc.Circuit {
	if qubits < 0 {
		qubits = -qubits
	}
	n := 2 + qubits%5
	const maxGates = 24
	c := qc.New("fuzz-zx", n)
	for i := 0; i+1 < len(data) && c.NumGates() < maxGates; i += 2 {
		op, qb := data[i], data[i+1]
		q := int(qb) % n
		switch op % 9 {
		case 0:
			t := (q + 1 + int(op>>4)%(n-1)) % n
			c.Append(qc.CNOT(q, t))
		case 1:
			c.Append(qc.T(q))
		case 2:
			c.Append(qc.P(q))
		case 3:
			c.Append(qc.Z(q))
		case 4:
			c.Append(pdag(q))
		case 5:
			c.Append(qc.Tdag(q))
		case 6:
			c.Append(qc.V(q))
		case 7:
			c.Append(qc.NOT(q))
		case 8:
			c.Append(vdag(q))
		}
	}
	return c
}

// FuzzZXRewrite drives fuzzer-shaped decomposed circuits through the ZX
// rewrite chain and checks the pass's whole contract: the rewrite engine
// terminates (a hang or rewrite-budget blowup fails the run), a
// successful reduce preserves the qubit count and the circuit's unitary
// (state-vector checked — every decoded circuit is small enough), and
// Optimize never returns a canonically costlier circuit than its input.
func FuzzZXRewrite(f *testing.F) {
	f.Add(2, []byte{0x00, 0x01, 0x11, 0x00, 0x51, 0x01})         // CNOT + T + Tdag
	f.Add(3, []byte{0x11, 0x00, 0x11, 0x00, 0x00, 0x00})         // T.T fuses to P
	f.Add(4, []byte{0x66, 0x02, 0x00, 0x02, 0x88, 0x03})         // V, CNOT, Vdag
	f.Add(1, []byte{0x22, 0x00, 0x42, 0x00, 0x31, 0x01})         // P.Pdag.Z
	f.Add(5, []byte{0x10, 0x00, 0x00, 0x01, 0x70, 0x02, 0x13, 0x03}) // mixed
	f.Fuzz(func(t *testing.T, qubits int, data []byte) {
		c := decodeFuzzCircuit(qubits, data)
		if c.NumGates() == 0 {
			t.Skip()
		}
		n := c.NumQubits()

		// The wire-structured light pass has no legitimate failure mode on
		// a valid decomposed circuit and must always preserve the unitary.
		lred, _, err := reduceLight(c)
		if err != nil {
			t.Fatalf("reduceLight: %v", err)
		}
		if lred.NumQubits() != n || len(lred.Gates) > len(c.Gates) {
			t.Fatalf("reduceLight broke shape: %d qubits %d gates -> %d qubits %d gates",
				n, len(c.Gates), lred.NumQubits(), len(lred.Gates))
		}
		if ok, err := sim.EquivalentUpToPhase(n, c, lred); err != nil || !ok {
			t.Fatalf("reduceLight changed the unitary (ok=%v err=%v) of %v", ok, err, c.Gates)
		}

		// reduce may legitimately fail (extraction anomalies fall back in
		// Optimize), but when it succeeds the result must be a faithful,
		// same-width decomposed circuit.
		if red, _, err := reduce(c); err == nil {
			if red.NumQubits() != n {
				t.Fatalf("reduce changed qubit count: %d -> %d", n, red.NumQubits())
			}
			if err := red.Validate(); err != nil {
				t.Fatalf("reduce produced an invalid circuit: %v", err)
			}
			ok, err := sim.EquivalentUpToPhase(n, c, red)
			if err != nil {
				t.Fatalf("simulate: %v", err)
			}
			if !ok {
				t.Fatalf("reduce changed the unitary of %v", c.Gates)
			}
		}

		out, st, err := Optimize(c)
		if err != nil {
			t.Fatalf("Optimize rejected a decomposed circuit: %v", err)
		}
		if out.NumQubits() != n {
			t.Fatalf("Optimize changed qubit count: %d -> %d", n, out.NumQubits())
		}
		if st.CanonicalAfter > st.CanonicalBefore {
			t.Fatalf("Optimize made the circuit worse: canonical %d -> %d", st.CanonicalBefore, st.CanonicalAfter)
		}
		if st.Applied == (st.FallbackReason != "") {
			t.Fatalf("inconsistent stats: applied=%v fallback=%q", st.Applied, st.FallbackReason)
		}
	})
}
