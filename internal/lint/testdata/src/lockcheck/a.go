// Package lctest exercises the lockcheck analyzer: value copies of
// mutex-bearing structs, Locks not released on every path, panic-capable
// calls inside non-deferred critical sections, and inverted acquisition
// orders.
package lctest

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

type twin struct {
	a sync.Mutex
	b sync.Mutex
}

// get copies the receiver — and with it the mutex.
func (c counter) get() int { // want `copies its receiver's mutex`
	return c.n
}

// inc locks through a pointer receiver: fine.
func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// snapshot takes a mutex-bearing struct by value.
func snapshot(c counter) int { // want `copies a mutex-containing struct by value`
	return c.n
}

// leaky releases only on one branch.
func leaky(c *counter, early bool) int {
	c.mu.Lock() // want `Lock is not released on every path`
	if early {
		return 0
	}
	c.mu.Unlock()
	return c.n
}

// balanced releases on both branches: fine.
func balanced(c *counter, early bool) int {
	c.mu.Lock()
	if early {
		c.mu.Unlock()
		return 0
	}
	c.mu.Unlock()
	return c.n
}

// boom panics; its summary marks it MayPanic for callers.
func boom() {
	panic("boom")
}

// riskySection calls a panic-capable function between Lock and a
// non-deferred Unlock: a panic there leaks the lock.
func riskySection(c *counter) {
	c.mu.Lock()
	boom() // want `call can panic while a mutex is held without a deferred Unlock`
	c.mu.Unlock()
}

// deferredSection survives the same panic because the Unlock is deferred.
func deferredSection(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	boom()
}

// lockAB and lockBA acquire the twin mutexes in opposite orders; run
// concurrently they deadlock, so both sites are findings.
func lockAB(t *twin) {
	t.a.Lock()
	t.b.Lock() // want `lock order inversion`
	t.b.Unlock()
	t.a.Unlock()
}

func lockBA(t *twin) {
	t.b.Lock()
	t.a.Lock() // want `lock order inversion`
	t.a.Unlock()
	t.b.Unlock()
}
