package ccache

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSharedLeaderFailureNotCounted is the regression for the shared-hit
// drift: waiters used to be counted Shared the moment they coalesced, so a
// failed leader left behind shared hits that never materialized. Waiters
// must observe the leader's error, and the counters must record them as
// misses.
func TestSharedLeaderFailureNotCounted(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	const waiters = 8
	release := make(chan struct{})
	started := make(chan struct{})

	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), "k", func() ([]byte, error) {
			close(started)
			<-release
			return nil, boom
		})
		leaderErr <- err
	}()
	<-started

	var wg sync.WaitGroup
	errs := make([]error, waiters)
	vals := make([][]byte, waiters)
	waiting := make(chan struct{}, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			waiting <- struct{}{}
			v, o, err := c.Do(context.Background(), "k", func() ([]byte, error) {
				t.Error("waiter ran compute during an in-flight call")
				return nil, nil
			})
			if o != Shared {
				t.Errorf("waiter %d outcome = %v, want Shared", i, o)
			}
			errs[i], vals[i] = err, v
		}()
	}
	// All waiters are about to block on the flight; give them a beat to
	// reach the select, then fail the leader.
	for i := 0; i < waiters; i++ {
		<-waiting
	}
	close(release)
	wg.Wait()
	if err := <-leaderErr; !errors.Is(err, boom) {
		t.Fatalf("leader err = %v", err)
	}
	for i := 0; i < waiters; i++ {
		if !errors.Is(errs[i], boom) {
			t.Fatalf("waiter %d err = %v, want leader's error", i, errs[i])
		}
		if vals[i] != nil {
			t.Fatalf("waiter %d got a value %q from a failed flight", i, vals[i])
		}
	}

	s := c.Stats()
	if s.Shared != 0 || s.Hits != 0 {
		t.Fatalf("failed flight produced phantom shared hits: %+v", s)
	}
	// Some waiters may have raced in after the flight resolved and become
	// fresh leaders themselves; every one of them failed, so all lookups
	// are misses either way.
	if s.Misses != s.Lookups || s.Hits+s.Misses != s.Lookups {
		t.Fatalf("counter invariant violated after failed flight: %+v", s)
	}
}

// TestCounterInvariantStress hammers Do with mixed keys, failing computes
// and canceled waits (run under -race) and pins the accounting invariant
// the sharded cache multiplies by N: hits+misses == lookups, shared ≤ hits.
func TestCounterInvariantStress(t *testing.T) {
	stores := map[string]Store{
		"single":  New(1 << 10),
		"sharded": NewSharded(4, 1<<12),
	}
	for name, c := range stores {
		c := c
		t.Run(name, func(t *testing.T) {
			const goroutines, rounds, keys = 12, 150, 7
			var wg sync.WaitGroup
			var want atomic.Int64
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					for i := 0; i < rounds; i++ {
						k := fmt.Sprintf("key-%d", rng.Intn(keys))
						ctx := context.Background()
						var cancel context.CancelFunc
						if rng.Intn(8) == 0 {
							ctx, cancel = context.WithCancel(ctx)
							cancel() // abandoned waits must not count shared hits
						}
						fail := rng.Intn(4) == 0
						want.Add(1)
						_, _, err := c.Do(ctx, k, func() ([]byte, error) {
							if fail {
								return nil, errors.New("induced failure")
							}
							return []byte("payload-for-" + k), nil
						})
						_ = err // failures and cancellations are the point
						if cancel != nil {
							cancel()
						}
					}
				}()
			}
			wg.Wait()
			s := c.Stats()
			if s.Lookups != want.Load() {
				t.Fatalf("lookups = %d, want %d", s.Lookups, want.Load())
			}
			if s.Hits+s.Misses != s.Lookups {
				t.Fatalf("hits+misses != lookups: %+v", s)
			}
			if s.Shared > s.Hits {
				t.Fatalf("shared hits exceed hits: %+v", s)
			}
		})
	}
}

// TestShardedSingleFlightPerKey checks the sharded store still computes a
// key at most once across concurrent callers: a key always maps to the same
// shard, so per-shard single-flight is per-key single-flight.
func TestShardedSingleFlightPerKey(t *testing.T) {
	s := NewSharded(8, 1<<20)
	const callers, keys = 32, 4
	var computes [keys]atomic.Int64
	var wg sync.WaitGroup
	release := make(chan struct{})
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			k := i % keys
			v, _, err := s.Do(context.Background(), fmt.Sprintf("key-%d", k), func() ([]byte, error) {
				computes[k].Add(1)
				<-release
				return []byte(fmt.Sprintf("val-%d", k)), nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			if want := fmt.Sprintf("val-%d", k); string(v) != want {
				t.Errorf("caller %d got %q, want %q", i, v, want)
			}
		}()
	}
	close(release)
	wg.Wait()
	for k := range computes {
		if n := computes[k].Load(); n != 1 {
			t.Errorf("key %d computed %d times, want 1", k, n)
		}
	}
	st := s.Stats()
	if st.Lookups != callers || st.Misses != keys || st.Hits+st.Misses != st.Lookups {
		t.Fatalf("stats %+v", st)
	}
}

// TestShardedSpreadAndStats checks keys actually land on multiple shards,
// Put/Get round-trip through the hash, and the unioned stats add up.
func TestShardedSpreadAndStats(t *testing.T) {
	s := NewSharded(4, 4<<10)
	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d", s.Shards())
	}
	touched := map[*Cache]bool{}
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("content-address-%d", i)
		s.Put(k, []byte{byte(i)})
		touched[s.shard(k)] = true
		if v, ok := s.Get(k); !ok || len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("Get(%s) = %v, %v", k, v, ok)
		}
	}
	if len(touched) < 2 {
		t.Fatalf("64 keys landed on %d shard(s); hash is not spreading", len(touched))
	}
	st := s.Stats()
	if st.Entries != 64 || st.Bytes != 64 {
		t.Fatalf("unioned stats %+v", st)
	}
	if st.MaxBytes != 4<<10 {
		t.Fatalf("MaxBytes = %d, want the usable total %d", st.MaxBytes, 4<<10)
	}
	// Puts don't count as lookups.
	if st.Lookups != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Put counted as lookup: %+v", st)
	}
}

// TestNewShardedClamps pins the constructor edges: n<1 behaves like one
// shard, and a non-positive budget disables caching but keeps dedup.
func TestNewShardedClamps(t *testing.T) {
	s := NewSharded(0, 1<<10)
	if s.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", s.Shards())
	}
	d := NewSharded(4, 0)
	if _, _, err := d.Do(context.Background(), "k", func() ([]byte, error) { return []byte("v"), nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("k"); ok {
		t.Fatal("zero-budget sharded store cached a value")
	}
}
