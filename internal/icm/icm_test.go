package icm

import (
	"testing"
	"testing/quick"

	"repro/internal/decompose"
	"repro/internal/qc"
)

func convert(t *testing.T, c *qc.Circuit) *Circuit {
	t.Helper()
	r, err := decompose.Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := FromDecomposed(r.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if err := ic.Validate(); err != nil {
		t.Fatalf("converted circuit invalid: %v", err)
	}
	return ic
}

func TestFromDecomposedCNOTOnly(t *testing.T) {
	c := qc.New("cnots", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))
	ic := convert(t, c)
	s := ic.Stats()
	if s.Lines != 3 || s.CNOTs != 3 || s.NumY != 0 || s.NumA != 0 {
		t.Fatalf("stats: %+v", s)
	}
	if ic.NumLogical != 3 {
		t.Fatalf("logical: %d", ic.NumLogical)
	}
}

func TestFromDecomposedPGate(t *testing.T) {
	c := qc.New("p", 1)
	c.Append(qc.P(0))
	ic := convert(t, c)
	s := ic.Stats()
	if s.Lines != 2 || s.CNOTs != 1 || s.NumY != 1 {
		t.Fatalf("P footprint: %+v", s)
	}
	if ic.Lines[1].Init != InjectY {
		t.Fatalf("ancilla init: %v", ic.Lines[1].Init)
	}
}

func TestFromDecomposedTGate(t *testing.T) {
	c := qc.New("t", 1)
	c.Append(qc.T(0))
	ic := convert(t, c)
	s := ic.Stats()
	// T block: 5 new lines, 6 CNOTs, 1 |A⟩, 1 |Y⟩.
	if s.Lines != 6 || s.CNOTs != 6 || s.NumA != 1 || s.NumY != 1 {
		t.Fatalf("T footprint: %+v", s)
	}
	if len(ic.TGroups) != 1 {
		t.Fatalf("T groups: %d", len(ic.TGroups))
	}
	tg := ic.TGroups[0]
	if tg.ZMeasLine != 0 {
		t.Fatalf("Z measurement should consume the input line, got %d", tg.ZMeasLine)
	}
	if ic.Lines[0].Meas != MeasZ {
		t.Fatalf("input line measurement: %v", ic.Lines[0].Meas)
	}
	// The logical qubit must continue on a fresh line.
	last := ic.Lines[len(ic.Lines)-1]
	if last.Qubit != 0 {
		t.Fatalf("teleported qubit line not tagged: %+v", last)
	}
}

func TestTSLOrdering(t *testing.T) {
	c := qc.New("tt", 2)
	c.Append(qc.T(0), qc.T(1), qc.T(0), qc.T(0))
	ic := convert(t, c)
	if len(ic.TSL[0]) != 3 || len(ic.TSL[1]) != 1 {
		t.Fatalf("TSL sizes: %v", ic.TSL)
	}
	for k, id := range ic.TSL[0] {
		if ic.TGroups[id].Seq != k {
			t.Fatalf("TSL[0][%d] has Seq %d", k, ic.TGroups[id].Seq)
		}
	}
}

func TestToffoliFootprint(t *testing.T) {
	c := qc.New("tof", 3)
	c.Append(qc.Toffoli(0, 1, 2))
	ic := convert(t, c)
	s := ic.Stats()
	// Per DESIGN.md calibration: Toffoli → 7 T blocks (5 lines, 6 CNOTs,
	// 1A+1Y each) + 2 H = 2(P·V·P) → 6 Y lines/CNOTs + 6 direct CNOTs.
	if s.NumA != 7 {
		t.Errorf("|A⟩: %d want 7", s.NumA)
	}
	if s.NumY != 13 {
		t.Errorf("|Y⟩: %d want 13", s.NumY)
	}
	if s.Lines != 3+7*5+6 {
		t.Errorf("lines: %d want %d", s.Lines, 3+7*5+6)
	}
	if s.CNOTs != 6+7*6+6 {
		t.Errorf("CNOTs: %d want %d", s.CNOTs, 6+7*6+6)
	}
	if s.TGroups != 7 {
		t.Errorf("T groups: %d", s.TGroups)
	}
}

func TestPauliFrameZeroCost(t *testing.T) {
	c := qc.New("x", 2)
	c.Append(qc.NOT(0), qc.NOT(1), qc.CNOT(0, 1))
	ic := convert(t, c)
	if ic.Paulis != 2 {
		t.Fatalf("paulis: %d", ic.Paulis)
	}
	if ic.Stats().Lines != 2 || ic.Stats().CNOTs != 1 {
		t.Fatalf("pauli gates should add no lines or CNOTs")
	}
}

func TestFromDecomposedRejectsHighLevelGates(t *testing.T) {
	c := qc.New("h", 1)
	c.Append(qc.H(0))
	if _, err := FromDecomposed(c); err == nil {
		t.Fatal("H gate should be rejected (must decompose first)")
	}
	c2 := qc.New("cv", 2)
	c2.Append(qc.Gate{Kind: qc.GateV, Controls: []int{0}, Targets: []int{1}})
	if _, err := FromDecomposed(c2); err == nil {
		t.Fatal("controlled V should be rejected")
	}
}

func TestScheduleASAP(t *testing.T) {
	c := &Circuit{Name: "sched"}
	for i := 0; i < 4; i++ {
		c.newLine(InitZero, MeasOut, "", i)
	}
	c.addCNOT(0, 1) // slot 0
	c.addCNOT(2, 3) // slot 0 (disjoint)
	c.addCNOT(1, 2) // slot 1 (serializes after both)
	c.addCNOT(0, 3) // slot 1 (lines 0 and 3 free after slot 0)
	slots, depth := c.ScheduleASAP()
	want := []int{0, 0, 1, 1}
	for i, s := range want {
		if slots[i] != s {
			t.Errorf("cnot %d slot %d want %d", i, slots[i], s)
		}
	}
	if depth != 2 {
		t.Errorf("depth %d want 2", depth)
	}
}

func TestLinesOf(t *testing.T) {
	c := &Circuit{Name: "lines"}
	for i := 0; i < 3; i++ {
		c.newLine(InitZero, MeasOut, "", i)
	}
	c.addCNOT(0, 1)
	c.addCNOT(1, 2)
	per := c.LinesOf()
	if len(per[0]) != 1 || len(per[1]) != 2 || len(per[2]) != 1 {
		t.Fatalf("per-line: %v", per)
	}
	if per[1][0] != 0 || per[1][1] != 1 {
		t.Fatalf("line 1 order: %v", per[1])
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c := qc.New("v", 2)
	c.Append(qc.T(0))
	ic := convert(t, c)

	bad := *ic
	bad.CNOTs = append([]CNOT(nil), ic.CNOTs...)
	bad.CNOTs[0].Control = 999
	if err := bad.Validate(); err == nil {
		t.Error("dangling CNOT accepted")
	}

	bad2 := *ic
	bad2.CNOTs = append([]CNOT(nil), ic.CNOTs...)
	bad2.CNOTs[0].Target = bad2.CNOTs[0].Control
	if err := bad2.Validate(); err == nil {
		t.Error("self-loop CNOT accepted")
	}
}

func TestBenchmarkStatsIdentities(t *testing.T) {
	// For every paper benchmark: #|A⟩ = 7·#Toffoli and the footprint
	// identities of DESIGN.md hold exactly for the generated circuits.
	for _, spec := range qc.Benchmarks {
		r, err := decompose.Decompose(mustGen(t, spec))
		if err != nil {
			t.Fatal(err)
		}
		ic, err := FromDecomposed(r.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		s := ic.Stats()
		if s.NumA != 7*spec.Toffolis {
			t.Errorf("%s: |A⟩ %d want %d", spec.Name, s.NumA, 7*spec.Toffolis)
		}
		if s.NumY != 13*spec.Toffolis {
			t.Errorf("%s: |Y⟩ %d want %d", spec.Name, s.NumY, 13*spec.Toffolis)
		}
		wantLines := spec.Qubits + 41*spec.Toffolis
		if s.Lines != wantLines {
			t.Errorf("%s: lines %d want %d", spec.Name, s.Lines, wantLines)
		}
		wantCNOTs := 54*spec.Toffolis + spec.CNOTs
		if s.CNOTs != wantCNOTs {
			t.Errorf("%s: CNOTs %d want %d", spec.Name, s.CNOTs, wantCNOTs)
		}
		if s.TGroups != 7*spec.Toffolis {
			t.Errorf("%s: T groups %d", spec.Name, s.TGroups)
		}
	}
}

// Property: conversion of any generated circuit validates, and every CNOT
// slot respects per-line ordering in the ASAP schedule.
func TestQuickConversionValid(t *testing.T) {
	f := func(q uint8, nt, nn uint8, seed int64) bool {
		spec := qc.BenchmarkSpec{
			Name:     "fuzz",
			Qubits:   3 + int(q%10),
			Toffolis: int(nt % 10),
			NOTs:     int(nn % 10),
			Seed:     seed,
		}
		r, err := decompose.Decompose(mustGen(t, spec))
		if err != nil {
			return false
		}
		ic, err := FromDecomposed(r.Circuit)
		if err != nil || ic.Validate() != nil {
			return false
		}
		slots, depth := ic.ScheduleASAP()
		last := make(map[int]int) // line -> last slot seen
		for _, g := range ic.CNOTs {
			s := slots[g.ID]
			if s >= depth {
				return false
			}
			for _, ln := range []int{g.Control, g.Target} {
				if prev, ok := last[ln]; ok && s <= prev {
					return false
				}
				last[ln] = s
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// mustGen generates a benchmark circuit, failing the test on error.
func mustGen(tb testing.TB, spec qc.BenchmarkSpec) *qc.Circuit {
	tb.Helper()
	c, err := spec.Generate()
	if err != nil {
		tb.Fatal(err)
	}
	return c
}
