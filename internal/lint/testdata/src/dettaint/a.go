// Package dtsink is the sink half of the cross-package dettaint fixture:
// every tainted value here was produced in the sibling taintsrc package,
// so each finding proves a flow that crossed a package boundary through
// the function-summary layer.
package dtsink

import (
	"sort"
	"time"

	"repro/internal/dttest/taintsrc"
	"repro/internal/qc"
	"repro/tqec"
)

// direct consumes a tainted result from another package.
func direct() tqec.Result {
	var r tqec.Result
	r.Volume = taintsrc.Stamp() // want `wall-clock time\.Now \(via taintsrc\.Stamp\).* reaches tqec\.Result\.Volume`
	return r
}

// viaParamFlow threads the taint through a pass-through helper before it
// lands in a composite literal.
func viaParamFlow() tqec.Result {
	v := taintsrc.Echo(taintsrc.Stamp())
	return tqec.Result{PlacementAttempts: v} // want `reaches tqec\.Result\.PlacementAttempts`
}

// cacheKey taints the options struct and feeds it to the content-address
// sink.
func cacheKey(c *qc.Circuit) (string, error) {
	opts := tqec.Options{}
	opts.MaxGroupSize = taintsrc.Stamp() % 4
	return tqec.CacheKey(c, opts) // want `reaches tqec\.CacheKey content address`
}

// mapOrder lets map-iteration order reach a Result field.
func mapOrder(m map[string]int) tqec.Result {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	var r tqec.Result
	r.Degraded = names[0] == "x" // want `map-iteration order.* reaches tqec\.Result\.Degraded`
	return r
}

// mapOrderSorted is the fixed twin of mapOrder: sorting launders the
// order-dependence, so no finding.
func mapOrderSorted(m map[string]int) tqec.Result {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	var r tqec.Result
	r.Degraded = names[0] == "x"
	return r
}

// breakdownOK writes wall-clock durations into Result.Breakdown — the one
// exempt field, diagnostics by design — so no finding.
func breakdownOK(r *tqec.Result, start time.Time) tqec.Result {
	r.Breakdown.Add("stage", time.Since(start))
	return tqec.Result{Volume: 7}
}

// cleanFlow consumes a deterministic cross-package helper; no finding.
func cleanFlow() tqec.Result {
	var r tqec.Result
	r.Volume = taintsrc.Echo(taintsrc.Clean())
	return r
}
