// Package sim is a small dense state-vector simulator used to verify the
// gate-level correctness of the decomposition pipeline: that the 15-gate
// Toffoli network, the H = P·V·P lowering, the controlled-V expansion and
// the MCT ladder implement exactly the unitaries they claim (up to global
// phase), on every basis state.
//
// It supports the gate vocabulary of package qc on up to ~14 qubits, which
// is ample for the identities under test. Qubit 0 is the most significant
// bit of the basis-state index (big-endian), matching the reading order of
// circuit diagrams.
package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/qc"
)

// State is a normalized 2^n-dimensional state vector.
type State struct {
	n   int
	amp []complex128
}

// NewState returns |0...0⟩ on n qubits. Qubit counts outside [1,20] are
// rejected (the dense vector would not fit in memory).
func NewState(n int) (*State, error) {
	if n < 1 || n > 20 {
		return nil, fmt.Errorf("sim: unsupported qubit count %d", n)
	}
	s := &State{n: n, amp: make([]complex128, 1<<n)}
	s.amp[0] = 1
	return s, nil
}

// Basis returns the computational basis state |k⟩ on n qubits.
func Basis(n, k int) (*State, error) {
	s, err := NewState(n)
	if err != nil {
		return nil, err
	}
	if k < 0 || k >= 1<<n {
		return nil, fmt.Errorf("sim: basis index %d out of range for %d qubits", k, n)
	}
	s.amp[0] = 0
	s.amp[k] = 1
	return s, nil
}

// Qubits returns the qubit count.
func (s *State) Qubits() int { return s.n }

// Amplitude returns ⟨k|s⟩.
func (s *State) Amplitude(k int) complex128 { return s.amp[k] }

// Clone copies the state.
func (s *State) Clone() *State {
	return &State{n: s.n, amp: append([]complex128(nil), s.amp...)}
}

// bit returns the value of qubit q in basis index k (qubit 0 = MSB).
func (s *State) bit(k, q int) int {
	return (k >> (s.n - 1 - q)) & 1
}

// flip returns k with qubit q toggled.
func (s *State) flip(k, q int) int {
	return k ^ (1 << (s.n - 1 - q))
}

// applySingle applies the 2×2 unitary [[a,b],[c,d]] to qubit q.
func (s *State) applySingle(q int, a, b, c, d complex128) {
	mask := 1 << (s.n - 1 - q)
	for k := range s.amp {
		if k&mask != 0 {
			continue
		}
		k1 := k | mask
		v0, v1 := s.amp[k], s.amp[k1]
		s.amp[k] = a*v0 + b*v1
		s.amp[k1] = c*v0 + d*v1
	}
}

// Apply applies one gate.
func (s *State) Apply(g qc.Gate) error {
	if g.MaxQubit() >= s.n {
		return fmt.Errorf("sim: gate %v exceeds %d qubits", g, s.n)
	}
	switch g.Kind {
	case qc.GateNOT:
		s.applySingle(g.Targets[0], 0, 1, 1, 0)
	case qc.GateZ:
		s.applySingle(g.Targets[0], 1, 0, 0, -1)
	case qc.GateH:
		h := complex(1/math.Sqrt2, 0)
		s.applySingle(g.Targets[0], h, h, h, -h)
	case qc.GateP:
		s.applySingle(g.Targets[0], 1, 0, 0, 1i)
	case qc.GatePdag:
		s.applySingle(g.Targets[0], 1, 0, 0, -1i)
	case qc.GateT:
		s.applySingle(g.Targets[0], 1, 0, 0, cmplx.Exp(1i*math.Pi/4))
	case qc.GateTdag:
		s.applySingle(g.Targets[0], 1, 0, 0, cmplx.Exp(-1i*math.Pi/4))
	case qc.GateV, qc.GateVdag:
		// V = (1/(1+i))·[[1, -i],[-i, 1]] — a square root of X with
		// V·V = X exactly (the paper's Eq. 5 up to global phase).
		pre := complex(0.5, 0.5)
		mi := complex(0, -1)
		if g.Kind == qc.GateVdag {
			pre = complex(0.5, -0.5)
			mi = complex(0, 1)
		}
		if len(g.Controls) == 1 {
			s.applyControlledSingle(g.Controls[0], g.Targets[0], pre, pre*mi, pre*mi, pre)
			return nil
		}
		s.applySingle(g.Targets[0], pre, pre*mi, pre*mi, pre)
	case qc.GateCNOT:
		s.applyCX(g.Controls[0], g.Targets[0])
	case qc.GateToffoli:
		s.applyMCX(g.Controls, g.Targets[0])
	case qc.GateMCT:
		s.applyMCX(g.Controls, g.Targets[0])
	case qc.GateSwap:
		s.applySwap(g.Targets[0], g.Targets[1])
	case qc.GateFredkin:
		s.applyCSwap(g.Controls[0], g.Targets[0], g.Targets[1])
	default:
		return fmt.Errorf("sim: unsupported gate kind %v", g.Kind)
	}
	return nil
}

func (s *State) applyControlledSingle(c, t int, a, b, cc, d complex128) {
	cm := 1 << (s.n - 1 - c)
	tm := 1 << (s.n - 1 - t)
	for k := range s.amp {
		if k&cm == 0 || k&tm != 0 {
			continue
		}
		k1 := k | tm
		v0, v1 := s.amp[k], s.amp[k1]
		s.amp[k] = a*v0 + b*v1
		s.amp[k1] = cc*v0 + d*v1
	}
}

func (s *State) applyCX(c, t int) {
	cm := 1 << (s.n - 1 - c)
	tm := 1 << (s.n - 1 - t)
	for k := range s.amp {
		if k&cm != 0 && k&tm == 0 {
			k1 := k | tm
			s.amp[k], s.amp[k1] = s.amp[k1], s.amp[k]
		}
	}
}

func (s *State) applyMCX(controls []int, t int) {
	var cm int
	for _, c := range controls {
		cm |= 1 << (s.n - 1 - c)
	}
	tm := 1 << (s.n - 1 - t)
	for k := range s.amp {
		if k&cm == cm && k&tm == 0 {
			k1 := k | tm
			s.amp[k], s.amp[k1] = s.amp[k1], s.amp[k]
		}
	}
}

func (s *State) applySwap(a, b int) {
	am := 1 << (s.n - 1 - a)
	bm := 1 << (s.n - 1 - b)
	for k := range s.amp {
		if k&am != 0 && k&bm == 0 {
			k1 := (k &^ am) | bm
			s.amp[k], s.amp[k1] = s.amp[k1], s.amp[k]
		}
	}
}

func (s *State) applyCSwap(c, a, b int) {
	cm := 1 << (s.n - 1 - c)
	am := 1 << (s.n - 1 - a)
	bm := 1 << (s.n - 1 - b)
	for k := range s.amp {
		if k&cm != 0 && k&am != 0 && k&bm == 0 {
			k1 := (k &^ am) | bm
			s.amp[k], s.amp[k1] = s.amp[k1], s.amp[k]
		}
	}
}

// Run applies every gate of the circuit in order.
func (s *State) Run(c *qc.Circuit) error {
	for i, g := range c.Gates {
		if err := s.Apply(g); err != nil {
			return fmt.Errorf("sim: gate %d: %w", i, err)
		}
	}
	return nil
}

// FidelityUpToPhase returns |⟨a|b⟩|: 1 means the states agree up to a
// global phase.
func FidelityUpToPhase(a, b *State) float64 {
	if a.n != b.n {
		return 0
	}
	var inner complex128
	for k := range a.amp {
		inner += cmplx.Conj(a.amp[k]) * b.amp[k]
	}
	return cmplx.Abs(inner)
}

// EquivalentUpToPhase reports whether two circuits over n qubits implement
// the same unitary up to ONE shared global phase, by comparing their action
// on every computational basis state and requiring all relative phases to
// agree.
func EquivalentUpToPhase(n int, c1, c2 *qc.Circuit) (bool, error) {
	return EquivalentOnCleanAncillas(n, n, c1, c2)
}

// EquivalentOnCleanAncillas is EquivalentUpToPhase restricted to basis
// states whose qubits ≥ ancStart are |0⟩ — the contract of decompositions
// that borrow clean workspace ancillas (e.g. the MCT V-chain).
func EquivalentOnCleanAncillas(n, ancStart int, c1, c2 *qc.Circuit) (bool, error) {
	const eps = 1e-9
	ancMask := 0
	for q := ancStart; q < n; q++ {
		ancMask |= 1 << (n - 1 - q)
	}
	var ref complex128
	haveRef := false
	for k := 0; k < 1<<n; k++ {
		if k&ancMask != 0 {
			continue
		}
		s1, err := Basis(n, k)
		if err != nil {
			return false, err
		}
		if err := s1.Run(c1); err != nil {
			return false, err
		}
		s2, err := Basis(n, k)
		if err != nil {
			return false, err
		}
		if err := s2.Run(c2); err != nil {
			return false, err
		}
		var inner complex128
		for j := range s1.amp {
			inner += cmplx.Conj(s1.amp[j]) * s2.amp[j]
		}
		if math.Abs(cmplx.Abs(inner)-1) > eps {
			return false, nil // states differ beyond phase
		}
		if !haveRef {
			ref = inner
			haveRef = true
		} else if cmplx.Abs(inner-ref) > 1e-7 {
			return false, nil // per-state phases differ: not one global phase
		}
	}
	return true, nil
}
