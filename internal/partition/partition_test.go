package partition

import (
	"reflect"
	"testing"

	"repro/internal/decompose"
	"repro/internal/qc"
	"repro/internal/sim"
)

// clustered builds a circuit with two dense 3-qubit CNOT clusters joined
// by a single bridging CNOT — the shape a min-cut must split at the bridge.
func clustered(t *testing.T) *qc.Circuit {
	t.Helper()
	c := qc.New("clustered", 6)
	for r := 0; r < 3; r++ {
		c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2)) // cluster A
		c.Append(qc.CNOT(3, 4), qc.CNOT(4, 5), qc.CNOT(3, 5)) // cluster B
	}
	c.Append(qc.CNOT(2, 3)) // the bridge
	c.Append(qc.NOT(0), qc.NOT(5), qc.T(1), qc.T(4))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGreedyMinCutSplitsAtTheBridge(t *testing.T) {
	c := clustered(t)
	opts := Options{MaxQubitsPerPart: 3, Seed: 1}
	r, err := Partition(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(c, opts); err != nil {
		t.Fatal(err)
	}
	if len(r.Parts) != 2 {
		t.Fatalf("got %d parts, want 2", len(r.Parts))
	}
	if len(r.Seams) != 1 || r.Seams[0].Gate.Controls[0] != 2 || r.Seams[0].Gate.Targets[0] != 3 {
		t.Fatalf("seams %+v, want exactly the bridging CNOT 2→3", r.Seams)
	}
	// Each cluster must land whole on one side.
	for _, pair := range [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}} {
		if r.QubitPart[pair[0]] != r.QubitPart[pair[1]] {
			t.Fatalf("cluster qubits %v split across parts: %v", pair, r.QubitPart)
		}
	}
	if r.QubitPart[0] == r.QubitPart[3] {
		t.Fatalf("both clusters on one part: %v", r.QubitPart)
	}
}

func TestPassThroughBelowThreshold(t *testing.T) {
	c := clustered(t)
	for _, cap := range []int{0, 6, 100} {
		r, err := Partition(c, Options{MaxQubitsPerPart: cap, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !r.PassThrough || len(r.Parts) != 1 || len(r.Seams) != 0 {
			t.Fatalf("cap %d: parts %d, seams %d, passthrough %v", cap, len(r.Parts), len(r.Seams), r.PassThrough)
		}
		if err := r.Verify(c, Options{MaxQubitsPerPart: cap}); err != nil {
			t.Fatal(err)
		}
		if got := r.Parts[0].Circuit; got.NumGates() != c.NumGates() || got.NumQubits() != c.NumQubits() {
			t.Fatalf("pass-through part reshaped the circuit: %d gates, %d qubits", got.NumGates(), got.NumQubits())
		}
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	c := clustered(t)
	opts := Options{MaxQubitsPerPart: 2, Seed: 42}
	a, err := Partition(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different partitions:\n%+v\n%+v", a, b)
	}
}

func TestRejectsUndecomposedInput(t *testing.T) {
	c := qc.New("raw", 3)
	c.Append(qc.Toffoli(0, 1, 2))
	if _, err := Partition(c, Options{MaxQubitsPerPart: 2}); err == nil {
		t.Fatal("three-qubit gate accepted; partitioner requires decomposed input")
	}
	h := qc.New("cz-ish", 2)
	h.Append(qc.Gate{Kind: qc.GateV, Controls: []int{0}, Targets: []int{1}})
	if _, err := Partition(h, Options{MaxQubitsPerPart: 1}); err == nil {
		t.Fatal("two-qubit non-CNOT accepted; partitioner requires decomposed input")
	}
}

// TestReassembleIsSimEquivalent decomposes a benchmark-shaped circuit,
// partitions it, and checks the reassembly is not just structurally equal
// but simulates identically to the decomposed original.
func TestReassembleIsSimEquivalent(t *testing.T) {
	spec := qc.BenchmarkSpec{Name: "mix", Qubits: 6, Toffolis: 2, CNOTs: 6, NOTs: 2, Seed: 9}
	raw, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	d, err := decompose.Decompose(raw)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MaxQubitsPerPart: 3, Seed: 5}
	r, err := Partition(d.Circuit, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(d.Circuit, opts); err != nil {
		t.Fatal(err)
	}
	back, err := r.Reassemble(d.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	n := d.Circuit.NumQubits()
	if n > 12 {
		t.Skipf("decomposed to %d qubits; sim check bounded to 12", n)
	}
	ok, err := sim.EquivalentUpToPhase(n, back, d.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("reassembled partition is not sim-equivalent to the decomposed circuit")
	}
}

func TestStats(t *testing.T) {
	c := clustered(t)
	r, err := Partition(c, Options{MaxQubitsPerPart: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	parts, seams, largest := r.Stats()
	if parts != 2 || seams != 1 || largest != 3 {
		t.Fatalf("Stats() = %d, %d, %d", parts, seams, largest)
	}
}
