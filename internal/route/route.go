// Package route implements the paper's dual-defect net routing (Section
// III-D): iterative A* maze routing inside bounded search regions, a
// negotiation-based rip-up-and-reroute scheme with a history map
// (PathFinder-style), an R-tree obstacle index for module bodies and
// distillation boxes, and friend-net-aware targets — a net sharing a pin
// with an already routed net may terminate anywhere on the routed friend's
// path instead of at the pin, a topological deformation that preserves the
// braiding relationship (Fig. 19).
//
// The hot path is organized around three compounding optimizations:
// bidirectional A* for single-start/single-target nets (search.go), a
// conflict-graph batched first pass that colors the net-region overlap
// graph and searches each independent set concurrently (schedule in
// firstPass/colorBatches), and an incrementally maintained R-tree over
// routed net bounds so rip-up victim scans never rebuild an index or walk
// every route. Friend-net groups can optionally route as multi-terminal
// Steiner nets (steiner.go). Every mode is deterministic for a fixed
// input: see ARCHITECTURE.md's "Routing" section for the contracts.
package route

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bridge"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/place"
	"repro/internal/rtree"
)

// cancelCheckExpansions bounds how many A* expansions may elapse between
// context checks inside one search.
const cancelCheckExpansions = 2048

// Options configures the router.
type Options struct {
	// MaxIterations bounds the rip-up-and-reroute rounds after the first
	// pass.
	MaxIterations int
	// InitialMargin expands each net's initial search region (the
	// bounding box of its two pins) on every side.
	InitialMargin int
	// ExpandStep widens a failed net's region each retry.
	ExpandStep int
	// HistoryWeight scales the congestion history cost.
	HistoryWeight float64
	// FriendNets toggles friend-net-aware targets (disable for the
	// ablation: without bridging there are no shared pins anyway).
	FriendNets bool
	// MaxExpansions caps A* node expansions per attempt (safety valve).
	MaxExpansions int
	// Fallback enables graceful degradation: nets abandoned by the
	// negotiation rounds are rescued by a last-resort route over the
	// whole expanded world (larger volume, but connected). Rescued nets
	// set Result.Degraded and are listed in Result.FallbackNets.
	Fallback bool
	// Bidirectional enables the meet-in-the-middle A* kernel for nets
	// with exactly one start and one target cell in the search region
	// (multi-source/multi-target searches always run unidirectionally).
	// Both kernels return cost-optimal paths, but may prefer different
	// equal-cost geometry, so the flag is part of the cache key.
	Bidirectional bool
	// Steiner routes each friend-net group (a connected component of
	// nets sharing pins) as one multi-terminal net by nearest-terminal
	// merging instead of sequential two-pin nets. Requires FriendNets;
	// results are verified by group connectivity (every routed net's pin
	// pair must be connected through the union of its group's paths)
	// rather than per-terminal anchoring. Off by default.
	Steiner bool
	// FailNet, when non-nil, forces the listed nets to fail their normal
	// routing attempts (fault injection for degradation tests). Fallback
	// rescue attempts are not affected. Unless Serial is set, FailNet may
	// be called from concurrent first-pass searches and must be safe for
	// concurrent use.
	FailNet func(id int) bool
	// Serial disables the concurrent first pass: every net is searched on
	// the calling goroutine even when search regions allow batching. The
	// batched pass only co-schedules nets whose search regions are
	// pairwise disjoint and commits every conflicting net before a later
	// net searches, so it is exactly equivalent to the serial pass;
	// Serial exists for debugging and for benchmarking the difference.
	Serial bool
	// Clock, when non-nil, samples a monotonic elapsed time (typically
	// time.Since of a fixed origin, injected by the caller so this
	// package stays free of wall-clock reads) and enables the
	// Result.Stats sub-stage timings. Nil disables timing collection.
	// Cleared by tqec.CanonicalOptions: it never affects routing output.
	Clock func() time.Duration
}

// DefaultOptions returns the standard configuration. The expansion and
// rip-up bounds are sized so hopeless nets fail fast instead of thrashing
// congested regions.
func DefaultOptions() Options {
	return Options{
		MaxIterations: 5,
		InitialMargin: 3,
		ExpandStep:    4,
		HistoryWeight: 1.5,
		FriendNets:    true,
		MaxExpansions: 60000,
		Fallback:      true,
		Bidirectional: true,
	}
}

// FailedNet diagnoses one net that exhausted the negotiation rounds.
type FailedNet struct {
	// NetID is the net's ID.
	NetID int
	// PinA and PinB are the net's (rehomed) pin cells.
	PinA, PinB geom.Point
	// Manhattan is the pin-to-pin Manhattan distance.
	Manhattan int
	// Attempts counts routing attempts (first pass included).
	Attempts int
	// LastMargin is the search-region margin of the final attempt.
	LastMargin int
	// Fallback reports whether the net was rescued by fallback routing.
	Fallback bool
	// Reason describes the outcome.
	Reason string
}

// RoutingStats breaks the routing stage into sub-phases. The durations
// are collected only when Options.Clock is set (they are zero otherwise);
// the counters are always collected and are deterministic for a fixed
// input and options.
type RoutingStats struct {
	// Search is the time spent in A* searches: concurrent first-pass
	// batches are charged their wall-clock time, serial searches their
	// individual time.
	Search time.Duration
	// Commit is the time spent committing paths: recording routes,
	// claiming grid cells and maintaining the net R-tree.
	Commit time.Duration
	// RipUp is the time spent scanning for and removing rip-up victims,
	// including congestion-history charging.
	RipUp time.Duration
	// Searches, Commits and RipUpScans count the corresponding events.
	Searches, Commits, RipUpScans int
}

// Result is the routing outcome.
type Result struct {
	// Routes maps net ID to its routed path (endpoints inclusive).
	Routes map[int]geom.Path
	// Failed lists net IDs that could not be routed at all (fallback
	// included, when enabled).
	Failed []int
	// FailedNets carries per-net diagnostics for every net that
	// exhausted the negotiation rounds, whether or not the fallback
	// rescued it.
	FailedNets []FailedNet
	// FallbackNets lists net IDs routed by the degraded fallback.
	FallbackNets []int
	// Degraded reports that the result is usable but below full
	// quality: at least one net is fallback-routed or unrouted.
	Degraded bool
	// FirstPassRouted counts nets routed in the first iteration
	// (the paper reports 85-95%).
	FirstPassRouted int
	// Iterations is the number of routing rounds performed.
	Iterations int
	// RippedUp counts rip-up events.
	RippedUp int
	// HistoryCells counts cells that accumulated congestion history and
	// MaxHistory is the largest accumulated charge — both zero when the
	// first pass routed everything.
	HistoryCells int
	MaxHistory   float64
	// PinCells maps pin ID to the cell the router homed it to (pins may
	// be rehomed away from their geometric position, see homePin). Verify
	// uses it to check that every path terminal is anchored; results built
	// by hand may leave it nil, which skips the terminal check.
	PinCells map[int]geom.Point
	// Bounds is the bounding box of bodies, boxes and routes.
	Bounds geom.Box
	// Stats carries the sub-stage timing breakdown (see RoutingStats).
	Stats RoutingStats
	// Steiner records that the result was produced with Options.Steiner,
	// which switches Verify's terminal check to group connectivity.
	Steiner bool
}

// WireCells returns the total number of cells used by routed nets.
func (r *Result) WireCells() int {
	n := 0
	for _, p := range r.Routes {
		n += len(p)
	}
	return n
}

// endpointRebuilds counts endpoint-cache rebuilds (each rebuild sorts the
// start and target cell sets). Exposed for the regression test pinning
// that unchanged endpoints are not re-sorted across search attempts.
var endpointRebuilds atomic.Int64

// netEndpoints is the cached start/target cell sets of one net: the two
// (rehomed) pin cells plus, when FriendNets is enabled, every cell of
// every committed friend path at the corresponding pin. The cells are
// cellLess-sorted and deduplicated; sbox/tbox are the bounding boxes used
// as A* heuristic anchors. The cache is keyed by the two pins' revision
// counters, which bump on every commit and uncommit of an incident net,
// so a search only re-collects (and re-sorts) endpoints after they
// actually changed.
type netEndpoints struct {
	valid      bool
	revA, revB uint64
	starts     []geom.Point
	targets    []geom.Point
	sbox, tbox geom.Box
	// deg is the cellLess-smallest cell present in both sets (a friend
	// path touching both pins); when hasDeg is set the net routes as the
	// single-cell path {deg} without a search.
	deg    geom.Point
	hasDeg bool
}

type router struct {
	p    *place.Placement
	nets []bridge.Net
	opts Options

	// ctx and ctxErr implement cooperative cancellation: every routing
	// loop and the A* inner loop poll checkCtx and unwind when it trips.
	ctx    context.Context
	ctxErr error
	// inFallback marks the degraded rescue phase (disables FailNet
	// injection so forced failures can be rescued).
	inFallback bool
	// shove marks a shove-rescue search: the A* kernels may cross other
	// nets' committed cells at shovePenalty each (see shoveRescue). Only
	// toggled in the serial degrade phase, never during batched searches.
	shove bool

	static *rtree.Tree // module bodies and distillation boxes

	// grid holds the per-cell world state — rasterized static obstacles,
	// net ownership (a cell is recorded for its first owner only; friend
	// endpoints may coincide), pin ownership and congestion history — in
	// dense flat arrays for O(1) map-free probes in the A* inner loop
	// (with a hash-map fallback above denseGridLimit cells).
	grid *grid

	pinCell map[int]geom.Point // pin ID -> cell
	routes  map[int]geom.Path
	// routeBounds caches each routed path's bounding box so rip-up
	// victim scans can skip distant nets cheaply.
	routeBounds map[int]geom.Box
	// netTree indexes routed net bounding boxes, maintained
	// incrementally on commit and uncommit, so rip-up victim scans query
	// it instead of walking every route.
	netTree *rtree.Tree

	// friends[pin] lists net IDs sharing the pin.
	friends map[int][]int

	// eps caches per-net endpoint sets (indexed by net ID, which equals
	// the net's index in nets); pinRev holds the pin revision counters
	// that invalidate them. dirtyPins collects pins whose committed
	// incident paths were removed since the last dangling scan, so
	// repairDangling only re-checks nets that can actually have changed.
	eps       []netEndpoints
	pinRev    map[int]uint64
	dirtyPins map[int]bool

	// base is the pre-routing extent (placement bounds, or the caller's
	// slab extent for seam routing); finish unions routes and pin cells
	// into it. world clamps all search regions.
	base  geom.Box
	world geom.Box

	result *Result
}

// Run routes all nets of the placement.
func Run(p *place.Placement, opts Options) (*Result, error) {
	//lint:ignore ctxflow sanctioned no-context entry point; RunContext is the threaded variant
	return RunContext(context.Background(), p, opts)
}

// RunContext is Run with cooperative cancellation: the routing rounds and
// the A* inner loop poll ctx, so a deadline aborts within a bounded number
// of expansions and returns an error wrapping faults.ErrCanceled.
func RunContext(ctx context.Context, p *place.Placement, opts Options) (*Result, error) {
	if opts.MaxIterations < 0 {
		return nil, fmt.Errorf("route: negative iterations")
	}
	if opts.MaxExpansions <= 0 {
		opts.MaxExpansions = 200000
	}
	if err := faults.Canceled(ctx); err != nil {
		return nil, fmt.Errorf("route: %w", err)
	}
	r := &router{
		p:           p,
		nets:        p.Nets,
		opts:        opts,
		ctx:         ctx,
		static:      rtree.New(),
		pinCell:     map[int]geom.Point{},
		routes:      map[int]geom.Path{},
		routeBounds: map[int]geom.Box{},
		netTree:     rtree.New(),
		friends:     map[int][]int{},
		eps:         make([]netEndpoints, len(p.Nets)),
		pinRev:      map[int]uint64{},
		dirtyPins:   map[int]bool{},
		result:      &Result{Routes: map[int]geom.Path{}, Steiner: opts.Steiner && opts.FriendNets},
	}
	if err := r.build(); err != nil {
		return nil, err
	}
	r.route()
	if r.ctxErr != nil {
		return nil, fmt.Errorf("route: %w", r.ctxErr)
	}
	r.finish()
	return r.result, nil
}

// tick samples the injected clock; it returns 0 when timing is disabled,
// so duration deltas computed from it collapse to zero.
func (r *router) tick() time.Duration {
	if r.opts.Clock == nil {
		return 0
	}
	return r.opts.Clock()
}

// checkCtx polls the context, caching the first cancellation error. It
// reports true when the router should unwind.
func (r *router) checkCtx() bool {
	if r.ctxErr != nil {
		return true
	}
	if err := faults.Canceled(r.ctx); err != nil {
		r.ctxErr = err
		return true
	}
	return false
}

// build populates obstacles, pin cells, friend groups and the per-cell
// grid. The grid is indexed by the routable world, which depends on the
// homed pin cells, so obstacles and pins first land in temporary maps
// (which homePin also consults) and are transferred once the world is
// known.
func (r *router) build() error {
	cl := r.p.Clust
	staticCells := map[geom.Point]bool{}
	cellPin := map[geom.Point]int{}
	rasterize := func(b geom.Box) {
		for x := b.Min.X; x < b.Max.X; x++ {
			for y := b.Min.Y; y < b.Max.Y; y++ {
				for z := b.Min.Z; z < b.Max.Z; z++ {
					staticCells[geom.Pt(x, y, z)] = true
				}
			}
		}
	}
	for m := range cl.NL.Modules {
		b := r.p.ModuleBox(m)
		r.static.Insert(b, -1)
		rasterize(b)
	}
	for _, b := range r.p.BoxObstacles() {
		r.static.Insert(b, -1)
		rasterize(b)
	}
	for _, n := range r.nets {
		for _, pid := range []int{n.PinA, n.PinB} {
			if _, ok := r.pinCell[pid]; ok {
				continue
			}
			pos, err := r.p.PinPos(pid)
			if err != nil {
				return fmt.Errorf("route: net %d: %w", n.ID, err)
			}
			pos, err = r.homePin(pid, pos, staticCells, cellPin)
			if err != nil {
				return fmt.Errorf("route: net %d: %w", n.ID, err)
			}
			r.pinCell[pid] = pos
			cellPin[pos] = pid
		}
		r.friends[n.PinA] = append(r.friends[n.PinA], n.ID)
		r.friends[n.PinB] = append(r.friends[n.PinB], n.ID)
	}
	// The routable world: everything placed, expanded generously so
	// detours around the hull remain possible.
	r.base = r.p.Bounds()
	bounds := r.base
	for _, c := range r.pinCell {
		bounds = bounds.UnionPoint(c)
	}
	r.world = bounds.Expand(6 + 2*r.opts.MaxIterations*r.opts.ExpandStep)
	// Transfer the build-time maps into the world-indexed grid. Both
	// transfers only set independent per-cell flags, so map iteration
	// order cannot influence the result.
	r.grid = newGrid(r.world)
	for c := range staticCells {
		r.grid.setStatic(c)
	}
	for c, pid := range cellPin {
		r.grid.setPin(c, pid)
	}
	return nil
}

// homePin resolves pin-cell collisions: with the shared inter-tier routing
// plane, the natural pin cell of one module can coincide with a facing
// pin of the adjacent tier or sit inside an obstacle. The dual segment may
// exit its primal ring anywhere along the opening, so the pin is rehomed
// to the nearest free cell in the same plane above/below its module body.
func (r *router) homePin(pid int, pos geom.Point, staticCells map[geom.Point]bool, cellPin map[geom.Point]int) (geom.Point, error) {
	free := func(c geom.Point) bool {
		if staticCells[c] {
			return false
		}
		_, taken := cellPin[c]
		return !taken
	}
	if free(pos) {
		return pos, nil
	}
	pin := r.p.Clust.NL.Pins[pid]
	m := r.p.Clust.NL.Segments[pin.Segment].Module
	mb := r.p.ModuleBox(m)
	// Search the pin plane over the module footprint, nearest first.
	type cand struct {
		c geom.Point
		d int
	}
	var cands []cand
	for x := mb.Min.X; x < mb.Max.X; x++ {
		for y := mb.Min.Y; y < mb.Max.Y; y++ {
			c := geom.Pt(x, y, pos.Z)
			if free(c) {
				cands = append(cands, cand{c: c, d: c.Manhattan(pos)})
			}
		}
	}
	if len(cands) == 0 {
		return pos, fmt.Errorf("pin %d: no free cell in plane z=%d over module %d", pid, pos.Z, m)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		a, b := cands[i].c, cands[j].c
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	return cands[0].c, nil
}

// route performs the iterative routing with rip-up and reroute: a first
// pass over all nets (Steiner groups first when enabled, then individual
// nets in non-decreasing pin-distance order, batched by the conflict
// graph unless Serial), a bounded negotiation loop that widens failed
// nets' regions and rips up blocking victims while charging congestion
// history, anchoring/connectivity repair, and finally the degradation
// path for anything left.
func (r *router) route() {
	// First iteration: all nets, sorted by non-decreasing Manhattan
	// distance.
	order := make([]int, len(r.nets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return r.netDist(r.nets[order[i]]) < r.netDist(r.nets[order[j]])
	})

	margin := make([]int, len(r.nets))
	for i := range margin {
		margin[i] = r.opts.InitialMargin
	}

	var failed []int
	if r.result.Steiner {
		var grouped map[int]bool
		grouped, failed = r.routeSteinerGroups()
		rest := order[:0]
		for _, idx := range order {
			if !grouped[idx] {
				rest = append(rest, idx)
			}
		}
		order = rest
	}
	failed = append(failed, r.firstPass(order, margin)...)
	if r.ctxErr != nil {
		return
	}
	r.result.Iterations = 1

	// Negotiation bounds: a net is retried at most MaxIterations times,
	// and the total rip-up budget is proportional to the netlist size —
	// without these, a handful of genuinely unroutable nets can thrash
	// the whole region indefinitely.
	attempts := make([]int, len(r.nets))
	ripBudget := 3 * len(r.nets)
	var abandoned []int
	for iter := 0; iter < r.opts.MaxIterations && len(failed) > 0; iter++ {
		r.result.Iterations++
		var still []int
		for _, idx := range failed {
			if r.checkCtx() {
				return
			}
			if attempts[idx] >= r.opts.MaxIterations {
				abandoned = append(abandoned, idx)
				continue
			}
			attempts[idx]++
			margin[idx] += r.opts.ExpandStep
			n := r.nets[idx]
			if r.tryRoute(n, margin[idx]) {
				continue
			}
			if r.result.RippedUp >= ripBudget {
				still = append(still, idx)
				continue
			}
			// Negotiate: first rip up only the nets hugging the pins
			// (the usual blockage), then everything in the search
			// region; history charges accumulate on ripped cells.
			ripped := r.ripUpRegion(r.searchRegion(n, 1), n.ID)
			if !r.tryRoute(n, margin[idx]) {
				ripped = append(ripped, r.ripUpRegion(r.searchRegion(n, margin[idx]), n.ID)...)
			}
			if r.tryRoute(n, margin[idx]) {
				// Re-route the victims immediately (they keep their
				// original margins).
				for _, v := range ripped {
					if !r.tryRoute(r.nets[v], margin[v]+r.opts.ExpandStep) {
						still = append(still, v)
					}
				}
				continue
			}
			// Restore victims and give up this round.
			for _, v := range ripped {
				if !r.tryRoute(r.nets[v], margin[v]) {
					still = append(still, v)
				}
			}
			still = append(still, idx)
		}
		failed = dedupInts(still)
	}
	failed = append(failed, abandoned...)
	// Restore the friend-net anchoring invariant (or, in Steiner mode,
	// group connectivity): rip-ups may have left nets terminating on
	// paths that no longer exist. Nets the repair cannot re-route join
	// the failed set for the degradation path.
	if r.result.Steiner {
		failed = append(failed, r.repairGroups(margin)...)
	} else {
		failed = append(failed, r.repairDangling(margin)...)
	}
	var exhausted []int
	for _, idx := range dedupInts(failed) {
		if _, routed := r.routes[r.nets[idx].ID]; !routed {
			exhausted = append(exhausted, idx)
		}
	}
	sort.Ints(exhausted)
	r.degrade(exhausted, attempts, margin)
}

// firstPass routes every net once, in the given order, and returns the
// indices of the nets that failed, in order. With Options.Serial every
// net is searched and committed on the calling goroutine. Otherwise the
// pass partitions the order into conflict-graph batches (colorBatches):
// each batch's nets have pairwise-disjoint search regions and every
// earlier-order net with an overlapping region sits in an earlier batch,
// so by the time a batch searches concurrently, exactly the same routes
// are committed as before each member's serial search — a committed path
// never leaves its net's search region, and friend nets always share a
// pin cell (hence overlapping regions, hence an earlier batch). Batch
// results commit serially in order and failures are re-sorted to the
// serial failure order, so the outcome is exactly the serial pass's.
func (r *router) firstPass(order []int, margin []int) (failed []int) {
	if r.opts.Serial {
		for _, idx := range order {
			if r.checkCtx() {
				return failed
			}
			t0 := r.tick()
			path := r.searchNet(r.nets[idx], margin[idx])
			r.result.Stats.Search += r.tick() - t0
			r.result.Stats.Searches++
			if path != nil {
				r.commit(r.nets[idx], path)
				r.result.FirstPassRouted++
			} else {
				failed = append(failed, idx)
			}
		}
		return failed
	}
	pos := make([]int, len(r.nets)) // net index -> order position
	for oi, idx := range order {
		pos[idx] = oi
	}
	for _, batch := range r.colorBatches(order, margin) {
		if r.checkCtx() {
			break
		}
		// Warm the endpoint caches serially: the concurrent searches
		// below then only read them.
		for _, idx := range batch {
			r.endpointsFor(r.nets[idx])
		}
		paths := make([]geom.Path, len(batch))
		t0 := r.tick()
		if len(batch) == 1 {
			paths[0] = r.searchNet(r.nets[batch[0]], margin[batch[0]])
		} else {
			var wg sync.WaitGroup
			for bi, idx := range batch {
				wg.Add(1)
				go func(bi, idx int) {
					defer wg.Done()
					paths[bi] = r.searchNet(r.nets[idx], margin[idx])
				}(bi, idx)
			}
			wg.Wait()
		}
		r.result.Stats.Search += r.tick() - t0
		r.result.Stats.Searches += len(batch)
		for bi, idx := range batch {
			if paths[bi] != nil {
				r.commit(r.nets[idx], paths[bi])
				r.result.FirstPassRouted++
			} else {
				failed = append(failed, idx)
			}
		}
	}
	// Batches interleave the order, so restore the serial failure order.
	sort.Slice(failed, func(i, j int) bool { return pos[failed[i]] < pos[failed[j]] })
	return failed
}

// colorBatches partitions order into layered conflict-graph classes: two
// nets conflict when their search regions intersect, and a net's class is
// 1 + the maximum class of any EARLIER-order conflicting net (0 with
// none). Within a class all regions are pairwise disjoint (a same-class
// earlier conflict would have forced a later class), and every earlier
// conflicting net lands in a strictly earlier class — the property
// firstPass needs for serial equivalence. The conflict queries run
// against an R-tree of all regions built once per pass, replacing the old
// disjoint-prefix scheme that rebuilt a prefix index per batch and never
// batched past the first overlap.
func (r *router) colorBatches(order []int, margin []int) [][]int {
	boxes := make([]geom.Box, len(order))
	regions := rtree.New()
	for oi, idx := range order {
		boxes[oi] = r.searchRegion(r.nets[idx], margin[idx])
		regions.Insert(boxes[oi], oi)
	}
	color := make([]int, len(order))
	var batches [][]int
	var hits []rtree.Entry
	for oi := range order {
		c := 0
		hits = regions.Search(boxes[oi], hits[:0])
		for _, e := range hits {
			if e.ID < oi && color[e.ID] >= c {
				c = color[e.ID] + 1
			}
		}
		color[oi] = c
		if c == len(batches) {
			batches = append(batches, nil)
		}
		batches[c] = append(batches[c], order[oi])
	}
	return batches
}

// shovePenalty is the extra cost a shove-rescue search pays per foreign
// committed cell it crosses: large enough that any free detour up to a
// thousand steps is preferred, finite so an enclosed net can still buy
// its way out through the thinnest wall of committed paths.
const shovePenalty = 1024.0

// shoveRescueBudget bounds the extra shove rescues one degrade call may
// perform beyond one per originally exhausted net, so cascading victim
// reroutes cannot ripple forever.
const shoveRescueBudget = 4

// shoveRescue is the router's final escalation state: a whole-world
// search that may cross other nets' committed cells at shovePenalty
// each. On success exactly the crossed nets are ripped up (with the
// usual history charge), the rescued path is committed, and the victims
// are returned in ascending order for rerouting by the caller. Statics
// and foreign pin cells stay impassable, so a false return proves the
// net's terminals are enclosed by immovable geometry. Terminal cells are
// exempt from victim collection: ending on a friend's committed path is
// the ordinary Fig. 19 deformation, not a crossing.
func (r *router) shoveRescue(n bridge.Net, margin int) ([]int, bool) {
	t0 := r.tick()
	r.shove = true
	path := r.searchNet(n, margin)
	r.shove = false
	r.result.Stats.Search += r.tick() - t0
	r.result.Stats.Searches++
	if path == nil {
		return nil, false
	}
	victims := map[int]bool{}
	for i, c := range path {
		if i == 0 || i == len(path)-1 {
			continue
		}
		if id, ok := r.grid.netOwner(c); ok && id != n.ID {
			victims[id] = true
		}
	}
	out := make([]int, 0, len(victims))
	for id := range victims {
		out = append(out, id)
	}
	sort.Ints(out)
	for _, id := range out {
		for _, c := range r.routes[id] {
			r.grid.histAdd(c, 1.0)
			r.grid.clearNet(c, id)
		}
		r.dropRoute(id)
		r.result.RippedUp++
	}
	r.commit(n, path)
	return out, true
}

// degrade handles the nets left unrouted after the negotiation rounds.
// When Fallback is enabled each net gets a last-resort route over the
// whole expanded world; a net the plain fallback cannot place escalates
// to a shove rescue (see shoveRescue), whose ripped victims join the
// worklist and are rerouted the same way. Because shoves can strand a
// friend's borrowed terminal, each round ends with a dangling repair,
// and any nets it gives up on re-enter the worklist. The shove budget
// bounds the cascade; everything still unrouted when the work dries up
// lands in Failed. All rescued or failed nets get FailedNet diagnostics,
// and any rescue or failure marks the result Degraded. Steiner results
// skip the shove escalation (ripping a group member would invalidate
// the group-connectivity invariant repairGroups has just restored).
func (r *router) degrade(exhausted []int, attempts, margin []int) {
	if len(exhausted) == 0 {
		return
	}
	// A margin this large makes searchRegion degenerate to the full
	// world (searchRegion clamps against it).
	worldMargin := r.world.Dx() + r.world.Dy() + r.world.Dz()
	shoveBudget := len(exhausted) + shoveRescueBudget
	if r.result.Steiner || !r.opts.Fallback {
		shoveBudget = 0
	}
	// reason records the outcome per net index; "" means still unrouted.
	reason := map[int]string{}
	queue := append([]int(nil), exhausted...)
	r.inFallback = true
	shoved := false
	for len(queue) > 0 {
		work := queue
		queue = nil
		for qi := 0; qi < len(work); qi++ {
			if r.checkCtx() {
				r.inFallback = false
				return
			}
			idx := work[qi]
			n := r.nets[idx]
			if _, done := r.routes[n.ID]; done {
				continue // rerouted, or re-queued after already being rescued
			}
			if _, seen := reason[idx]; !seen {
				reason[idx] = ""
			}
			victim := reason[idx] != "" // ripped again after an earlier rescue
			if !r.opts.Fallback {
				reason[idx] = "negotiation exhausted (fallback disabled)"
				continue
			}
			if r.tryRoute(n, worldMargin) {
				if victim {
					reason[idx] = "ripped by a shove rescue; rerouted by whole-world fallback"
				} else {
					reason[idx] = "negotiation exhausted; rescued by whole-world fallback route"
				}
				continue
			}
			if shoveBudget > 0 {
				if victims, ok := r.shoveRescue(n, worldMargin); ok {
					shoveBudget--
					shoved = true
					reason[idx] = "negotiation exhausted; rescued by whole-world shove route"
					for _, v := range victims {
						if _, seen := reason[v]; !seen {
							reason[v] = "ripped by a shove rescue; rerouted by whole-world fallback"
						}
					}
					work = append(work, victims...)
					continue
				}
			}
			reason[idx] = "unroutable: negotiation and whole-world fallback both exhausted"
		}
		// Shove rescues can strand a friend that borrowed a victim's old
		// path; restore the anchoring invariant and requeue anything the
		// repair gives up on.
		if shoved && !r.result.Steiner {
			shoved = false
			for _, idx := range r.repairDangling(margin) {
				if _, routed := r.routes[r.nets[idx].ID]; !routed {
					queue = append(queue, idx)
				}
			}
			sort.Ints(queue)
		}
	}
	r.inFallback = false
	touched := make([]int, 0, len(reason))
	for idx := range reason {
		touched = append(touched, idx)
	}
	sort.Ints(touched)
	for _, idx := range touched {
		n := r.nets[idx]
		_, routed := r.routes[n.ID]
		fn := FailedNet{
			NetID:      n.ID,
			PinA:       r.pinCell[n.PinA],
			PinB:       r.pinCell[n.PinB],
			Manhattan:  r.netDist(n),
			Attempts:   attempts[idx] + 1,
			LastMargin: margin[idx],
			Fallback:   routed,
			Reason:     reason[idx],
		}
		if routed {
			r.result.FallbackNets = append(r.result.FallbackNets, n.ID)
		} else {
			if fn.Reason == "" {
				fn.Reason = "unroutable: negotiation and whole-world fallback both exhausted"
			}
			r.result.Failed = append(r.result.Failed, n.ID)
		}
		r.result.FailedNets = append(r.result.FailedNets, fn)
	}
	r.result.Degraded = len(r.result.FallbackNets) > 0 || len(r.result.Failed) > 0
}

func dedupInts(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func (r *router) netDist(n bridge.Net) int {
	return r.pinCell[n.PinA].Manhattan(r.pinCell[n.PinB])
}

func (r *router) searchRegion(n bridge.Net, margin int) geom.Box {
	b := geom.CellBox(r.pinCell[n.PinA]).UnionPoint(r.pinCell[n.PinB]).Expand(margin)
	return b.Intersect(r.world)
}

// ripUpRegion removes routed nets whose cells intersect the region,
// charging congestion history, and returns the victims' net indices in
// ascending order. Candidates come from the incrementally maintained net
// R-tree (bounding-box hits filtered by an exact cell scan), so the cost
// scales with the nets near the region, not the routed total. Ripping a
// net can leave a friend that terminated on its path with a dangling
// terminal; repairDangling re-anchors those after the negotiation rounds
// instead of cascading rip-ups here (eager transitive ripping thrashes
// the rip budget on congested regions).
func (r *router) ripUpRegion(region geom.Box, exceptNet int) []int {
	t0 := r.tick()
	var out []int
	for _, e := range r.netTree.Search(region, nil) {
		id := e.ID
		if id == exceptNet {
			continue
		}
		for _, c := range r.routes[id] {
			if region.Contains(c) {
				out = append(out, id)
				break
			}
		}
	}
	sort.Ints(out)
	for _, id := range out {
		for _, c := range r.routes[id] {
			r.grid.histAdd(c, 1.0)
			r.grid.clearNet(c, id)
		}
		r.dropRoute(id)
		r.result.RippedUp++
	}
	r.result.Stats.RipUp += r.tick() - t0
	r.result.Stats.RipUpScans++
	// net IDs equal their index in r.nets (bridge assigns them so).
	return out
}

// dropRoute removes net id's route bookkeeping — route map, bounds cache,
// net R-tree entry — and invalidates dependent state: the endpoint caches
// keyed off the net's pins and the dangling-scan dirty set. The caller
// has already cleared or will re-own the grid cells.
func (r *router) dropRoute(id int) {
	r.netTree.Delete(r.routeBounds[id], id)
	delete(r.routes, id)
	delete(r.routeBounds, id)
	n := r.nets[id]
	r.pinRev[n.PinA]++
	r.pinRev[n.PinB]++
	r.dirtyPins[n.PinA] = true
	r.dirtyPins[n.PinB] = true
}

// anchored reports whether cell c is a legal terminal for net n's pin:
// the net's own (rehomed) pin cell, or a cell of a committed route of
// another net sharing the pin (the friend-net deformation).
func (r *router) anchored(netID, pin int, c geom.Point) bool {
	if c == r.pinCell[pin] {
		return true
	}
	for _, fid := range r.friends[pin] {
		if fid == netID {
			continue
		}
		for _, fc := range r.routes[fid] {
			if fc == c {
				return true
			}
		}
	}
	return false
}

// danglingNets returns the routed nets whose paths are no longer anchored
// at both ends — a friend whose path a terminal borrowed was ripped up
// without this net being re-routed. A terminal at the net's own pin cell
// never dangles, so nets merely sharing a pin cell stay out. Only nets
// incident to a dirty pin (one whose committed incident paths were
// removed since the last scan) are examined: a commit can only add anchor
// cells, so an undisturbed net cannot start dangling.
func (r *router) danglingNets() []int {
	var bad []int
	checked := map[int]bool{}
	for pid := range r.dirtyPins {
		for _, id := range r.friends[pid] {
			if checked[id] {
				continue
			}
			checked[id] = true
			path, ok := r.routes[id]
			if !ok {
				continue
			}
			n := r.nets[id]
			head, tail := path[0], path[len(path)-1]
			if (r.anchored(id, n.PinA, head) && r.anchored(id, n.PinB, tail)) ||
				(r.anchored(id, n.PinB, head) && r.anchored(id, n.PinA, tail)) {
				continue
			}
			bad = append(bad, id)
		}
	}
	clear(r.dirtyPins)
	sort.Ints(bad)
	return bad
}

// uncommit removes a net's committed route without charging congestion
// history (used by terminal repair, which is not a congestion event).
func (r *router) uncommit(id int) {
	for _, c := range r.routes[id] {
		r.grid.clearNet(c, id)
	}
	r.dropRoute(id)
}

// repairDangling restores the friend-net anchoring invariant after the
// negotiation rounds: nets whose borrowed terminal dangles are ripped and
// re-routed against the current committed paths. A net whose plain
// reroute fails gets one negotiate round of its own — rip up the pin
// shell, then the search region, reroute at an escalated margin and give
// the victims their immediate retry — under an absolute rip budget, so a
// dangling net in a congested region is not abandoned while ordinary
// negotiation failures get rip-up rounds. Re-routing one net can strand
// another that borrowed its old path, so the scan iterates to a
// fixpoint; any net still unanchored at the bound, or unroutable even
// after its rip-up round, is left unrouted and returned so the caller
// hands it to the degradation path.
func (r *router) repairDangling(margin []int) []int {
	var lost []int
	ripBudget := 4 * len(r.nets) // absolute bound on r.result.RippedUp
	for pass := 0; pass <= len(r.nets); pass++ {
		if r.checkCtx() {
			return lost
		}
		bad := r.danglingNets()
		if len(bad) == 0 {
			return lost
		}
		for _, id := range bad {
			r.uncommit(id)
		}
		if pass == len(r.nets) {
			// Fixpoint bound hit: leave the stragglers unrouted rather
			// than committing paths that violate the anchoring invariant.
			return append(lost, bad...)
		}
		for _, id := range bad {
			n := r.nets[id]
			m := margin[id] + r.opts.ExpandStep
			if r.tryRoute(n, m) {
				continue
			}
			if r.result.RippedUp >= ripBudget {
				lost = append(lost, id)
				continue
			}
			ripped := r.ripUpRegion(r.searchRegion(n, 1), n.ID)
			if !r.tryRoute(n, m) {
				ripped = append(ripped, r.ripUpRegion(r.searchRegion(n, m), n.ID)...)
			}
			if !r.tryRoute(n, m) {
				lost = append(lost, id)
			}
			for _, v := range ripped {
				if !r.tryRoute(r.nets[v], margin[v]+r.opts.ExpandStep) {
					lost = append(lost, v)
				}
			}
		}
	}
	return lost
}

// endpointsFor returns net n's cached endpoint sets, rebuilding them only
// when a commit or uncommit of a net incident to either pin bumped the
// pin's revision since the last build. During a concurrent first-pass
// batch the caches of all batch members are warmed beforehand, so this is
// a read-only lookup from the search goroutines.
func (r *router) endpointsFor(n bridge.Net) *netEndpoints {
	ep := &r.eps[n.ID]
	ra, rb := r.pinRev[n.PinA], r.pinRev[n.PinB]
	if ep.valid && ep.revA == ra && ep.revB == rb {
		return ep
	}
	endpointRebuilds.Add(1)
	ep.starts = r.endpointCells(ep.starts[:0], n, n.PinA)
	ep.targets = r.endpointCells(ep.targets[:0], n, n.PinB)
	ep.sbox = cellsBounds(ep.starts)
	ep.tbox = cellsBounds(ep.targets)
	// Degenerate: a start cell that is already a target (friend paths
	// touching) routes with a single-cell path; both lists are
	// cellLess-sorted, so the first merge match is the lowest such cell
	// and the choice never depends on iteration order.
	ep.hasDeg = false
	for i, j := 0, 0; i < len(ep.starts) && j < len(ep.targets); {
		s, t := ep.starts[i], ep.targets[j]
		if s == t {
			ep.deg, ep.hasDeg = s, true
			break
		}
		if cellLess(s, t) {
			i++
		} else {
			j++
		}
	}
	ep.revA, ep.revB, ep.valid = ra, rb, true
	return ep
}

// endpointCells appends the pin's cell and (with FriendNets) every cell
// of every committed friend path at the pin, then sorts by cellLess and
// deduplicates.
func (r *router) endpointCells(dst []geom.Point, n bridge.Net, pin int) []geom.Point {
	dst = append(dst, r.pinCell[pin])
	if r.opts.FriendNets {
		for _, fid := range r.friends[pin] {
			if fid == n.ID {
				continue
			}
			dst = append(dst, r.routes[fid]...)
		}
	}
	sort.Slice(dst, func(i, j int) bool { return cellLess(dst[i], dst[j]) })
	out := dst[:0]
	for i, c := range dst {
		if i == 0 || c != dst[i-1] {
			out = append(out, c)
		}
	}
	return out
}

// cellsBounds returns the bounding box of the given cells.
func cellsBounds(cells []geom.Point) geom.Box {
	var b geom.Box
	for _, c := range cells {
		b = b.UnionPoint(c)
	}
	return b
}

// tryRoute attempts to route one net within its current search region,
// committing the path on success.
func (r *router) tryRoute(n bridge.Net, margin int) bool {
	if _, done := r.routes[n.ID]; done {
		return true
	}
	t0 := r.tick()
	path := r.searchNet(n, margin)
	r.result.Stats.Search += r.tick() - t0
	r.result.Stats.Searches++
	if path == nil {
		return false
	}
	r.commit(n, path)
	return true
}

// searchNet finds a path for one net within its current search region
// without committing it. Aside from a possible endpoint-cache fill (which
// the batched scheduler performs up front), it mutates no router state,
// so independent nets may search concurrently; the caller must not have
// routed n already.
func (r *router) searchNet(n bridge.Net, margin int) geom.Path {
	// Fault injection: force this net's normal attempts to fail so
	// degradation paths can be exercised under test. The fallback rescue
	// phase is exempt.
	if r.opts.FailNet != nil && !r.inFallback && r.opts.FailNet(n.ID) {
		return nil
	}
	ep := r.endpointsFor(n)
	if ep.hasDeg {
		return geom.Path{ep.deg}
	}
	return r.astar(n, ep, r.searchRegion(n, margin))
}

// commit records a routed path: the route map, the bounds cache, the net
// R-tree, grid cell ownership (first owner wins — friend endpoints may
// coincide) and the pin revisions that invalidate dependent endpoint
// caches.
func (r *router) commit(n bridge.Net, path geom.Path) {
	t0 := r.tick()
	r.routes[n.ID] = path
	b := path.Bounds()
	r.routeBounds[n.ID] = b
	r.netTree.Insert(b, n.ID)
	for _, c := range path {
		if _, occ := r.grid.netOwner(c); !occ {
			r.grid.setNet(c, n.ID)
		}
	}
	r.pinRev[n.PinA]++
	r.pinRev[n.PinB]++
	r.result.Stats.Commit += r.tick() - t0
	r.result.Stats.Commits++
}

// searchCanceled polls the context without caching the error; unlike
// checkCtx it writes no router state, so concurrent searches may call it.
// The serial phases rediscover the cancellation through checkCtx at the
// next loop boundary.
func (r *router) searchCanceled() bool {
	return faults.Canceled(r.ctx) != nil
}

// finish records routes and computes the final bounds. The history
// statistics come from grid.histStats, an order-independent aggregate,
// so the reported counts are identical across runs regardless of storage
// (dense array or map fallback).
func (r *router) finish() {
	r.result.HistoryCells, r.result.MaxHistory = r.grid.histStats()
	b := r.base
	for id, path := range r.routes {
		r.result.Routes[id] = path
		b = b.Union(path.Bounds())
	}
	r.result.PinCells = make(map[int]geom.Point, len(r.pinCell))
	for pid, c := range r.pinCell {
		r.result.PinCells[pid] = c
		b = b.UnionPoint(c)
	}
	r.result.Bounds = b
}

// Verify checks that every routed path is connected, collision-free
// against module bodies/boxes, and does not overlap other nets except at
// shared friend cells (path endpoints). When the result carries PinCells,
// it additionally checks that every path terminal is anchored: at the
// net's own pin cell, or on the committed path of a friend net sharing
// that pin (the Fig. 19 deformation); Steiner results are instead checked
// by group connectivity (see verifyGroups). A result with unrouted nets
// fails with an error wrapping faults.ErrUnroutable; a degraded
// (fallback-routed) result fails with an error wrapping
// faults.ErrDegraded, so a degraded routing can never verify silently.
func Verify(p *place.Placement, res *Result) error {
	if err := VerifyStructure(p, res); err != nil {
		return err
	}
	if len(res.Failed) > 0 {
		return fmt.Errorf("route: %w: %d nets unrouted: %v", faults.ErrUnroutable, len(res.Failed), res.Failed)
	}
	if res.Degraded || len(res.FallbackNets) > 0 {
		return fmt.Errorf("route: %w: %d fallback-routed nets: %v",
			faults.ErrDegraded, len(res.FallbackNets), res.FallbackNets)
	}
	return nil
}

// VerifyStructure is Verify without the strictness conditions: it checks
// path connectivity, obstacle freedom, friend-cell sharing and terminal
// anchoring (or Steiner group connectivity) of whatever was routed, but
// accepts results with unrouted or fallback-routed nets. Degradation-
// tolerant verifiers (the unbridged ablation differential in
// internal/check) use it to confirm a degraded routing is still
// structurally sound.
func VerifyStructure(p *place.Placement, res *Result) error {
	if err := verifyStructure(p, res); err != nil {
		return err
	}
	if res.PinCells == nil {
		return nil
	}
	if res.Steiner {
		return verifyGroups(p, res)
	}
	return verifyTerminals(p, res)
}

// verifyStructure runs the structural path checks shared by strict and
// degraded verification.
func verifyStructure(p *place.Placement, res *Result) error {
	// Module bodies carry their module index so a violation names the
	// module it pierces; distillation boxes use -1.
	static := rtree.New()
	for m := range p.Clust.NL.Modules {
		static.Insert(p.ModuleBox(m), m)
	}
	for _, b := range p.BoxObstacles() {
		static.Insert(b, -1)
	}
	type use struct {
		id  int
		mid bool
	}
	uses := map[geom.Point][]use{}
	for id, path := range res.Routes {
		if len(path) == 0 {
			return fmt.Errorf("route: net %d has empty path", id)
		}
		if !path.Valid() {
			return fmt.Errorf("route: net %d path disconnected", id)
		}
		for i, c := range path {
			if static.Intersects(geom.CellBox(c)) {
				return fmt.Errorf("route: net %d cell %v %s", id, c, obstacleName(static, c))
			}
			uses[c] = append(uses[c], use{id: id, mid: i != 0 && i != len(path)-1})
		}
	}
	// A cell may be shared only under the friend-net rule: at most one of
	// the sharing nets passes through it mid-path; the others terminate
	// there (ending on a friend's routed path is a valid topological
	// deformation).
	for c, us := range uses {
		mids := 0
		for _, u := range us {
			if u.mid {
				mids++
			}
		}
		if mids > 1 {
			return fmt.Errorf("route: %d nets overlap mid-path at %v", mids, c)
		}
	}
	return nil
}

// obstacleName describes the static obstacle covering cell c: the pierced
// module by index, or a distillation box.
func obstacleName(static *rtree.Tree, c geom.Point) string {
	for _, e := range static.Search(geom.CellBox(c), nil) {
		if e.ID >= 0 {
			return fmt.Sprintf("inside module %d body", e.ID)
		}
	}
	return "inside a distillation-box obstacle"
}

// verifyTerminals enforces the friend-net anchoring invariant on every
// routed path: each terminal must sit at the net's own (rehomed) pin cell
// or on the committed path of another net sharing that pin, with one
// terminal anchoring each pin. A path that anchors neither orientation is
// dangling — the friend path its deformation borrowed was ripped up
// without this net being re-routed.
func verifyTerminals(p *place.Placement, res *Result) error {
	netByID := make(map[int]bridge.Net, len(p.Nets))
	friends := map[int][]int{}
	for _, n := range p.Nets {
		netByID[n.ID] = n
		friends[n.PinA] = append(friends[n.PinA], n.ID)
		friends[n.PinB] = append(friends[n.PinB], n.ID)
	}
	onFriendPath := func(netID, pin int, c geom.Point) bool {
		for _, fid := range friends[pin] {
			if fid == netID {
				continue
			}
			for _, fc := range res.Routes[fid] {
				if fc == c {
					return true
				}
			}
		}
		return false
	}
	ids := make([]int, 0, len(res.Routes))
	for id := range res.Routes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		n, ok := netByID[id]
		if !ok {
			return fmt.Errorf("route: routed net %d not in the netlist", id)
		}
		path := res.Routes[id]
		head, tail := path[0], path[len(path)-1]
		anchors := func(pin int, c geom.Point) bool {
			return c == res.PinCells[pin] || onFriendPath(id, pin, c)
		}
		if !(anchors(n.PinA, head) && anchors(n.PinB, tail)) &&
			!(anchors(n.PinB, head) && anchors(n.PinA, tail)) {
			return fmt.Errorf("route: net %d terminals %v..%v dangle: want pin cells %v/%v or a friend path at each end",
				id, head, tail, res.PinCells[n.PinA], res.PinCells[n.PinB])
		}
	}
	return nil
}
