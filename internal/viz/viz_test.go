package viz

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bridge"
	"repro/internal/canonical"
	"repro/internal/cluster"
	"repro/internal/decompose"
	"repro/internal/geom"
	"repro/internal/icm"
	"repro/internal/modular"
	"repro/internal/place"
	"repro/internal/qc"
	"repro/internal/route"
)

func compiled(t testing.TB) (*place.Placement, *route.Result) {
	t.Helper()
	c := qc.New("viz", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))
	r, err := decompose.Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := icm.FromDecomposed(r.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	d, err := canonical.Build(ic)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := modular.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	br, err := bridge.Run(nl, true)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.Build(nl, cluster.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	po := place.DefaultOptions()
	po.Iterations = 200
	po.Seed = 2
	pl, err := place.Run(cl, br.Nets, po)
	if err != nil {
		t.Fatal(err)
	}
	res, err := route.Run(pl, route.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return pl, res
}

func TestBuildScene(t *testing.T) {
	pl, res := compiled(t)
	s := BuildScene(pl, res)
	if s.Occupied() == 0 {
		t.Fatal("empty scene")
	}
	if s.Bounds.Empty() {
		t.Fatal("empty bounds")
	}
	// Module cells keep their kind even where nets pass by.
	for m := range pl.Clust.NL.Modules {
		b := pl.ModuleBox(m)
		if s.At(b.Min) != CellModule {
			t.Fatalf("module corner %v: %c", b.Min, s.At(b.Min))
		}
	}
	if s.At(geom.Pt(-999, -999, -999)) != CellEmpty {
		t.Fatal("far cell should be empty")
	}
}

func TestSceneCountsNets(t *testing.T) {
	pl, res := compiled(t)
	s := BuildScene(pl, res)
	stars := 0
	for x := s.Bounds.Min.X; x < s.Bounds.Max.X; x++ {
		for y := s.Bounds.Min.Y; y < s.Bounds.Max.Y; y++ {
			for z := s.Bounds.Min.Z; z < s.Bounds.Max.Z; z++ {
				if s.At(geom.Pt(x, y, z)) == CellNet {
					stars++
				}
			}
		}
	}
	if stars == 0 {
		t.Fatal("no net cells rendered")
	}
}

func TestWriteSlices(t *testing.T) {
	pl, res := compiled(t)
	s := BuildScene(pl, res)
	var buf bytes.Buffer
	if err := s.WriteSlices(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "z=") {
		t.Fatal("no slice headers")
	}
	if !strings.ContainsAny(out, "M") {
		t.Fatal("no module glyphs")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < s.Bounds.Dz() {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestWriteCSV(t *testing.T) {
	pl, res := compiled(t)
	s := BuildScene(pl, res)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "x,y,z,kind" {
		t.Fatalf("header: %q", lines[0])
	}
	if len(lines)-1 != s.Occupied() {
		t.Fatalf("%d rows for %d cells", len(lines)-1, s.Occupied())
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := s.WriteCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("CSV output not deterministic")
	}
}

func TestWriteOBJ(t *testing.T) {
	pl, res := compiled(t)
	var buf bytes.Buffer
	if err := WriteOBJ(&buf, pl, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "g module_0") {
		t.Fatal("missing module group")
	}
	if !strings.Contains(out, "v ") || !strings.Contains(out, "f ") {
		t.Fatal("missing vertices or faces")
	}
	// Faces must reference valid vertex indices: count them.
	vcount := strings.Count(out, "\nv ")
	if strings.HasPrefix(out, "v ") {
		vcount++
	}
	if vcount%8 != 0 {
		t.Fatalf("vertex count %d not a multiple of 8", vcount)
	}
}

func TestWriteSVG(t *testing.T) {
	pl, res := compiled(t)
	s := BuildScene(pl, res)
	var buf bytes.Buffer
	if err := s.WriteSVG(&buf, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	if !strings.Contains(out, svgFill[CellModule]) {
		t.Fatal("no module rectangles")
	}
	if !strings.Contains(out, svgFill[CellNet]) {
		t.Fatal("no net rectangles")
	}
	// One panel per z slice.
	if strings.Count(out, ">z=") != s.Bounds.Dz() {
		t.Fatalf("panels: %d want %d", strings.Count(out, ">z="), s.Bounds.Dz())
	}
}

func TestWriteSVGEmptyScene(t *testing.T) {
	s := &Scene{cells: map[geom.Point]CellKind{}}
	var buf bytes.Buffer
	if err := s.WriteSVG(&buf, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatal("empty scene should still emit svg")
	}
}
