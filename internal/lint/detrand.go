package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// detPackages are the stages whose output must be a pure function of their
// inputs and the explicit seed: placement SA, routing, bridge negotiation
// and benchmark-circuit generation. Reproducibility of these stages is what
// makes the paper's tables replayable.
var detPackages = []string{
	"repro/internal/place",
	"repro/internal/route",
	"repro/internal/bridge",
	"repro/internal/qc",
}

// detRandDraws are the math/rand package-level functions that consume the
// global (process-wide, unseeded-by-us) source. Constructors (New,
// NewSource, NewZipf) stay legal: all randomness must flow from an
// explicitly seeded *rand.Rand.
var detRandDraws = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// DetRand enforces determinism in the seeded stages.
//
//   - time.Now/Since/Until are banned: wall-clock values leak
//     irreproducible state into results.
//   - Draws from the global math/rand source are banned; only methods of an
//     explicitly seeded *rand.Rand may produce randomness.
//   - A slice appended to inside a range-over-map loop must be sorted
//     before the function ends (or the iteration rewritten over sorted
//     keys): map iteration order is the classic silent nondeterminism.
//
// DetRand is the residual, control-flow side of determinism enforcement:
// it bans the *act* of drawing nondeterministic state in the seeded
// stages, where even a branch on a wall-clock read skews the output. The
// dettaint analyzer covers the data side module-wide, following values
// from sources to canonical-encoding sinks across package boundaries.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "seeded stages (place/route/bridge/qc) draw no wall-clock time, no global rand, no map-order output",
	Run:  runDetRand,
}

func inDetScope(path string) bool {
	for _, p := range detPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func runDetRand(pass *Pass) {
	if !inDetScope(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Pkg.Info, call)
			switch name := pkgFunc(fn); name {
			case "time.Now", "time.Since", "time.Until":
				pass.Reportf(call.Pos(), "%s in a seeded stage: wall-clock state breaks reproducibility", name)
			default:
				if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math/rand" &&
					name != "" && detRandDraws[fn.Name()] {
					pass.Reportf(call.Pos(), "rand.%s draws from the global source: use an explicitly seeded *rand.Rand", fn.Name())
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkMapOrder(pass, fd)
			}
		}
	}
}

// checkMapOrder flags slices that accumulate elements in map-iteration
// order without a subsequent sort in the same function. The mechanics
// (rangeAppendTargets, sortedAfterStmt) live in taint.go, where the same
// pattern also seeds the dettaint engine's map-order taint.
func checkMapOrder(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, obj := range rangeAppendTargets(pass.Pkg, rs) {
			if !sortedAfterStmt(pass.Pkg, fd, rs, obj) {
				pass.Reportf(rs.Pos(), "slice %q accumulates map-iteration order: sort it before use or range over sorted keys", obj.Name())
			}
		}
		return true
	})
}
