package harness

import (
	"bytes"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// ChaosPlan drives deterministic service-level fault injection against a
// tqecd instance: synthetic 5xx bursts, slow responses, periodic "process
// crashes" (the test wires Crash to a Server stop/recover cycle) and
// periodic durable-state corruption (Corrupt, typically a garbage tail
// appended to the newest journal segment between close and reopen). The
// plan exposes the same decision stream through two shapes — an HTTP
// middleware for the server side and an http.RoundTripper for the client
// side — so a soak test can install whichever layer a fault belongs to.
// All decisions derive from Seed and a request counter, so a given plan
// replays the same fault schedule on every run. The zero value injects
// nothing.
type ChaosPlan struct {
	// Seed drives every probabilistic decision; two plans with the same
	// seed and knobs fire the same schedule.
	Seed uint64

	// ErrorFraction is the per-request probability of starting a
	// synthetic outage: the request (and the next BurstLen-1) are
	// answered 503 without reaching the wrapped handler or transport.
	ErrorFraction float64
	// BurstLen is the number of consecutive requests one outage sheds
	// (0 = 1).
	BurstLen int

	// SlowFraction is the per-request probability of delaying a forwarded
	// request by SlowDelay (context-aware; a canceled request stops
	// waiting).
	SlowFraction float64
	// SlowDelay is the injected latency for slow requests.
	SlowDelay time.Duration

	// CrashEvery fires Crash after every Nth request (0 = never).
	CrashEvery int
	// Crash simulates a process death; the soak test wires it to
	// hard-stop the current server, reopen the journal and swap a
	// recovered instance in. Called from the request path, so it must be
	// safe under concurrency.
	Crash func()

	// CorruptEvery fires Corrupt after every Nth request (0 = never).
	CorruptEvery int
	// Corrupt injects durable-state damage; the soak test arms a flag the
	// next crash cycle consumes to scribble on the journal while it is
	// closed.
	Corrupt func()

	disabled  atomic.Bool
	reqs      atomic.Uint64
	burstLeft atomic.Int64

	shed        atomic.Uint64
	delayed     atomic.Uint64
	crashes     atomic.Uint64
	corruptions atomic.Uint64
}

// ChaosStats counts what a plan actually injected, so tests can assert the
// chaos was real rather than a schedule that silently never fired.
type ChaosStats struct {
	// Requests is the number of requests the plan decided on.
	Requests uint64 `json:"requests"`
	// Shed counts synthetic 503 responses.
	Shed uint64 `json:"shed"`
	// Delayed counts requests slowed by SlowDelay.
	Delayed uint64 `json:"delayed"`
	// Crashes counts Crash invocations.
	Crashes uint64 `json:"crashes"`
	// Corruptions counts Corrupt invocations.
	Corruptions uint64 `json:"corruptions"`
}

// Stats snapshots the injection counters.
func (p *ChaosPlan) Stats() ChaosStats {
	return ChaosStats{
		Requests:    p.reqs.Load(),
		Shed:        p.shed.Load(),
		Delayed:     p.delayed.Load(),
		Crashes:     p.crashes.Load(),
		Corruptions: p.corruptions.Load(),
	}
}

// chaosDecision is one request's fault assignment.
type chaosDecision struct {
	shed    bool
	slow    bool
	crash   bool
	corrupt bool
}

// chaosMix is the splitmix64 finalizer, the same generator the placement
// and retry layers use for decorrelated deterministic streams.
func chaosMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d4b33a2af89d25
	return z ^ (z >> 31)
}

// chaosFrac maps a mixed word onto [0, 1).
func chaosFrac(r uint64) float64 {
	return float64(r>>11) / float64(uint64(1)<<53)
}

// Disable turns all injection off: subsequent requests pass through
// untouched. Soak tests call it before their verification phase, so the
// accounting runs against a quiesced service.
func (p *ChaosPlan) Disable() {
	p.disabled.Store(true)
}

// step assigns the next request its faults. The counter is shared between
// the middleware and the transport, so installing both interleaves one
// decision stream rather than doubling every fault.
func (p *ChaosPlan) step() chaosDecision {
	var d chaosDecision
	if p.disabled.Load() {
		return d
	}
	n := p.reqs.Add(1)
	// An in-progress outage sheds first, independent of the dice.
	if p.burstLeft.Load() > 0 && p.burstLeft.Add(-1) >= 0 {
		d.shed = true
	} else if r := chaosMix(p.Seed + 2*n); chaosFrac(r) < p.ErrorFraction {
		d.shed = true
		if p.BurstLen > 1 {
			p.burstLeft.Store(int64(p.BurstLen - 1))
		}
	}
	if r := chaosMix(p.Seed + 2*n + 1); chaosFrac(r) < p.SlowFraction {
		d.slow = true
	}
	if p.CrashEvery > 0 && n%uint64(p.CrashEvery) == 0 {
		d.crash = true
	}
	if p.CorruptEvery > 0 && n%uint64(p.CorruptEvery) == 0 {
		d.corrupt = true
	}
	return d
}

// fire runs the side-effect hooks for a decision (crash/corrupt) and
// counts what actually happened.
func (p *ChaosPlan) fire(d chaosDecision) {
	if d.corrupt && p.Corrupt != nil {
		p.corruptions.Add(1)
		p.Corrupt()
	}
	if d.crash && p.Crash != nil {
		p.crashes.Add(1)
		p.Crash()
	}
}

// sleep waits for SlowDelay or the request's cancellation, whichever comes
// first.
func (p *ChaosPlan) sleep(done <-chan struct{}) {
	if p.SlowDelay <= 0 {
		return
	}
	t := time.NewTimer(p.SlowDelay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
}

// chaosErrorBody is the structured 503 payload synthetic outages serve; it
// mirrors the server's error envelope so load clients parse it uniformly.
const chaosErrorBody = `{"error":{"message":"chaos: injected outage","sentinel":"chaos"}}`

// Middleware wraps a handler with server-side injection: synthetic 503
// bursts and slow responses happen before the request reaches next, and
// crash/corrupt hooks fire on their schedule.
func (p *ChaosPlan) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := p.step()
		p.fire(d)
		if d.slow {
			p.delayed.Add(1)
			p.sleep(r.Context().Done())
		}
		if d.shed {
			p.shed.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			if _, err := io.WriteString(w, chaosErrorBody); err != nil {
				return
			}
			return
		}
		next.ServeHTTP(w, r)
	})
}

// RoundTripper wraps a transport with client-side injection of the same
// decision stream: shed requests are answered with a synthetic 503 without
// touching the network (a simulated outage between client and server), slow
// requests wait before being sent, and the crash/corrupt hooks fire on
// their schedule. A nil next wraps http.DefaultTransport.
func (p *ChaosPlan) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &chaosTransport{plan: p, next: next}
}

// chaosTransport is the RoundTripper shape of a ChaosPlan.
type chaosTransport struct {
	plan *ChaosPlan
	next http.RoundTripper
}

// RoundTrip applies the plan's next decision to one outgoing request.
func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	p := t.plan
	d := p.step()
	p.fire(d)
	if d.slow {
		p.delayed.Add(1)
		p.sleep(req.Context().Done())
	}
	if d.shed {
		p.shed.Add(1)
		body := []byte(chaosErrorBody)
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	return t.next.RoundTrip(req)
}
