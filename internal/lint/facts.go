package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
)

// FuncFacts is the interprocedural summary of one function: everything a
// caller's analysis needs to know without that function's body. Facts are
// JSON-serializable so the on-disk fact cache can replay them for
// packages that did not change.
type FuncFacts struct {
	// TaintedResults maps result index -> reason for results that may
	// carry nondeterministic values regardless of the arguments.
	TaintedResults map[int]string `json:"tainted_results,omitempty"`
	// ParamFlows maps parameter index (-1 = receiver) -> result indices
	// that become tainted when that parameter is tainted.
	ParamFlows map[int][]int `json:"param_flows,omitempty"`
	// SinkParams maps parameter index -> sink description for parameters
	// that (transitively) reach a determinism sink inside the function.
	SinkParams map[int]string `json:"sink_params,omitempty"`

	// CtxBounded reports that the function's body observes cancellation:
	// it receives from a context.Done() channel or from a channel-typed
	// parameter, so a goroutine running it terminates with its context.
	CtxBounded bool `json:"ctx_bounded,omitempty"`
	// WgDones lists the canonical IDs of sync.WaitGroup variables the
	// function calls Done on, so a spawner's Add/Wait pairing can be
	// verified across a call boundary.
	WgDones []string `json:"wg_dones,omitempty"`

	// MayPanic reports an explicit panic reachable in the function or its
	// callees (recover-wrapped panics included; the fact is conservative).
	MayPanic bool `json:"may_panic,omitempty"`
	// Locks lists the canonical IDs of mutexes the function (or its
	// callees) may acquire.
	Locks []string `json:"locks,omitempty"`
	// LockPairs records ordered acquisitions: First was held when Second
	// was acquired (directly or through a callee). Inverted pairs across
	// the module are lock-order violations.
	LockPairs []LockPair `json:"lock_pairs,omitempty"`
}

// LockPair is one ordered mutex acquisition with its source position.
type LockPair struct {
	First  string `json:"first"`
	Second string `json:"second"`
	File   string `json:"file"`
	Line   int    `json:"line"`
}

// FactStore holds the module's function summaries, keyed by FuncID.
type FactStore struct {
	funcs map[FuncID]*FuncFacts
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{funcs: map[FuncID]*FuncFacts{}}
}

// Get returns the facts for id, or nil when unknown (callee outside the
// analyzed set — analyses must treat that conservatively).
func (s *FactStore) Get(id FuncID) *FuncFacts {
	if s == nil {
		return nil
	}
	return s.funcs[id]
}

// Set records facts for id.
func (s *FactStore) Set(id FuncID, f *FuncFacts) { s.funcs[id] = f }

// PackageFacts extracts the summaries of one package's functions for the
// on-disk cache, keyed by FuncID.
func (s *FactStore) PackageFacts(pkg *Package) map[FuncID]*FuncFacts {
	out := map[FuncID]*FuncFacts{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if id := funcID(fn); id != "" {
				if facts := s.funcs[id]; facts != nil {
					out[id] = facts
				}
			}
		}
	}
	return out
}

// Merge loads externally-computed facts (a cache replay) into the store.
func (s *FactStore) Merge(facts map[FuncID]*FuncFacts) {
	for id, f := range facts {
		s.funcs[id] = f
	}
}

// AllLockPairs flattens every function's ordered-acquisition pairs into
// one deterministic slice — the input to the module-wide lock-order
// inversion check.
func (s *FactStore) AllLockPairs() []LockPair {
	if s == nil {
		return nil
	}
	ids := make([]FuncID, 0, len(s.funcs))
	for id := range s.funcs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []LockPair
	seen := map[LockPair]bool{}
	for _, id := range ids {
		for _, p := range s.funcs[id].LockPairs {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// ComputeFacts builds summaries for every function in pkgs, bottom-up in
// import order with a per-package fixpoint so intra-package recursion and
// mutual calls converge. Facts already present in the store (merged from
// the cache) are recomputed only for the packages given here, so a caller
// doing incremental analysis passes just the stale packages.
func ComputeFacts(store *FactStore, graph *CallGraph, pkgs []*Package) {
	for _, pkg := range topoOrder(pkgs) {
		for round := 0; round < 8; round++ {
			changed := false
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
					id := funcID(fn)
					if id == "" {
						continue
					}
					fresh := computeFuncFacts(pkg, store, graph, fd)
					if !reflect.DeepEqual(store.Get(id), fresh) {
						store.Set(id, fresh)
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
	}
}

// topoOrder sorts packages so that imports come before importers,
// restricted to the given set; ties resolve by import path for
// determinism.
func topoOrder(pkgs []*Package) []*Package {
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	var out []*Package
	state := map[string]int{} // 0 unseen, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p.Path] != 0 {
			return
		}
		state[p.Path] = 1
		imps := p.Types.Imports()
		paths := make([]string, 0, len(imps))
		for _, imp := range imps {
			paths = append(paths, imp.Path())
		}
		sort.Strings(paths)
		for _, path := range paths {
			if dep, ok := byPath[path]; ok && state[path] != 1 {
				visit(dep)
			}
		}
		state[p.Path] = 2
		out = append(out, p)
	}
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	for _, p := range sorted {
		visit(p)
	}
	return out
}

// computeFuncFacts derives one function's summary from its body and the
// current store.
func computeFuncFacts(pkg *Package, store *FactStore, graph *CallGraph, fd *ast.FuncDecl) *FuncFacts {
	facts := &FuncFacts{}

	// Taint: a base pass for unconditional result taint, then one pass
	// per parameter to learn param->result and param->sink flows.
	base := newTaintScan(pkg, store, graph, fd)
	base.propagate()
	if rt := base.resultTaint(); len(rt) > 0 {
		facts.TaintedResults = rt
	}
	baseHits := map[string]bool{}
	for _, h := range base.sinkHits() {
		baseHits[h.sink] = true
	}
	params := paramObjects(pkg, fd)
	idxs := make([]int, 0, len(params))
	for i := range params {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		obj := params[i]
		if obj == nil {
			continue
		}
		scan := newTaintScan(pkg, store, graph, fd)
		scan.assume[obj] = "parameter"
		scan.propagate()
		var flowed []int
		for idx := range scan.resultTaint() {
			if facts.TaintedResults == nil || facts.TaintedResults[idx] == "" {
				flowed = append(flowed, idx)
			}
		}
		if len(flowed) > 0 {
			sort.Ints(flowed)
			if facts.ParamFlows == nil {
				facts.ParamFlows = map[int][]int{}
			}
			facts.ParamFlows[i] = flowed
		}
		for _, h := range scan.sinkHits() {
			if baseHits[h.sink] {
				continue
			}
			if facts.SinkParams == nil {
				facts.SinkParams = map[int]string{}
			}
			if _, ok := facts.SinkParams[i]; !ok {
				facts.SinkParams[i] = h.sink
			}
		}
	}

	facts.CtxBounded = ctxBoundedBody(pkg, fd.Body)
	facts.WgDones = wgDoneIDs(pkg, fd.Body)
	facts.MayPanic = mayPanicBody(pkg, store, graph, fd.Body)
	facts.Locks, facts.LockPairs = lockSummary(pkg, store, graph, fd)
	return facts
}

// ctxBoundedBody reports whether body observes cancellation: a receive
// (direct, select or range) from a context's Done() channel or from a
// channel-typed identifier — the patterns that bound a goroutine's life
// to its spawner's control.
func ctxBoundedBody(pkg *Package, body ast.Node) bool {
	bounded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && cancelChannel(pkg, n.X) {
				bounded = true
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					bounded = true
				}
			}
		}
		return true
	})
	return bounded
}

// cancelChannel reports whether e is a cancellation-shaped channel: a
// ctx.Done() call or any expression of channel type (a done/quit channel
// threaded in by the spawner).
func cancelChannel(pkg *Package, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if isContextType(pkg.Info.TypeOf(sel.X)) {
				return true
			}
		}
	}
	if t := pkg.Info.TypeOf(e); t != nil {
		if _, isChan := t.Underlying().(*types.Chan); isChan {
			return true
		}
	}
	return false
}

// wgDoneIDs collects the canonical IDs of WaitGroups the body calls Done
// on (deferred or not).
func wgDoneIDs(pkg *Package, body ast.Node) []string {
	seen := map[string]bool{}
	var out []string
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if !isWaitGroup(pkg.Info.TypeOf(sel.X)) {
			return true
		}
		if id := syncObjID(pkg, sel.X); id != "" && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
		return true
	})
	sort.Strings(out)
	return out
}

// isWaitGroup matches sync.WaitGroup (pointer or value).
func isWaitGroup(t types.Type) bool {
	path, name, ok := namedType(t)
	return ok && path == "sync" && name == "WaitGroup"
}

// mayPanicBody reports an explicit panic call in the body or in any
// summarized callee.
func mayPanicBody(pkg *Package, store *FactStore, graph *CallGraph, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "panic" {
				found = true
				return false
			}
		}
		if graph != nil {
			for _, cid := range graph.CalleeIDs(pkg.Info, call) {
				if f := store.Get(cid); f != nil && f.MayPanic {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// syncObjID canonicalizes the variable behind a sync primitive selector
// (mutex, waitgroup): fields get a type-anchored "pkg.Type.field" ID that
// is stable across instances; package-level vars get "pkg.var"; locals and
// parameters get a function-scoped ID that still matches within one
// function but never joins across functions.
func syncObjID(pkg *Package, e ast.Expr) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		// Field access: anchor to the owning named type.
		if path, name, ok := namedType(pkg.Info.TypeOf(x.X)); ok {
			return path + "." + name + "." + x.Sel.Name
		}
		// Package-qualified var.
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := pkg.Info.ObjectOf(id).(*types.PkgName); isPkg {
				if obj := pkg.Info.ObjectOf(x.Sel); obj != nil && obj.Pkg() != nil {
					return obj.Pkg().Path() + "." + obj.Name()
				}
			}
		}
		return ""
	case *ast.Ident:
		obj := pkg.Info.ObjectOf(x)
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		// Local: scope the ID to the declaration position so two locals
		// in different functions never alias.
		return "local:" + obj.Pkg().Path() + "." + obj.Name() + "@" + pkg.Fset.Position(obj.Pos()).String()
	case *ast.StarExpr:
		return syncObjID(pkg, x.X)
	}
	return ""
}
