package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by Breaker.Allow while the breaker is
// shedding load; callers should reject fast with a Retry-After hint.
var ErrBreakerOpen = errors.New("circuit breaker open")

// BreakerState is the breaker's current mode.
type BreakerState int32

// Breaker states, in the order the machine cycles through them.
const (
	// BreakerClosed admits everything (healthy).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects everything until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe to test recovery.
	BreakerHalfOpen
)

// String names the state for the metrics endpoint.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// BreakerSettings configures a Breaker. Zero values mean defaults.
type BreakerSettings struct {
	// Threshold is how many consecutive failures trip the breaker open
	// (default 8).
	Threshold int
	// Cooldown is how long the breaker stays open before probing
	// (default 10s).
	Cooldown time.Duration
	// Now overrides the clock for deterministic tests (default
	// time.Now).
	Now func() time.Time
}

// Breaker is a consecutive-failure circuit breaker: Threshold failures in
// a row open it, Allow rejects while open, and after Cooldown a single
// probe is admitted — its success closes the breaker, its failure re-opens
// it for another cooldown. Only failures the caller judges systemic should
// be recorded: client errors and cancellations say nothing about service
// health. All methods are safe for concurrent use.
type Breaker struct {
	mu       sync.Mutex
	st       BreakerSettings
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool
	trips    int64
}

// NewBreaker builds a breaker from the settings.
func NewBreaker(st BreakerSettings) *Breaker {
	if st.Threshold <= 0 {
		st.Threshold = 8
	}
	if st.Cooldown <= 0 {
		st.Cooldown = 10 * time.Second
	}
	if st.Now == nil {
		st.Now = time.Now
	}
	return &Breaker{st: st}
}

// Allow reports whether a request may proceed. While open it returns
// ErrBreakerOpen until the cooldown elapses, then transitions to half-open
// and admits exactly one probe; further calls keep rejecting until that
// probe reports through Success or Failure.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.st.Now().Sub(b.openedAt) < b.st.Cooldown {
			return fmt.Errorf("%w: cooling down", ErrBreakerOpen)
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return fmt.Errorf("%w: probe in flight", ErrBreakerOpen)
		}
		b.probing = true
		return nil
	}
}

// Success records a healthy completion: it resets the failure streak and
// closes a half-open breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	b.state = BreakerClosed
}

// Abandon releases an admitted probe that never reached the protected
// operation (the request was rejected downstream — queue full, journal
// append failed — before anything health-relevant ran). A half-open
// breaker returns to accepting a new probe; in other states it is a no-op.
// Without this, a probe lost between Allow and the operation would wedge
// the half-open state shut forever.
func (b *Breaker) Abandon() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// Failure records a systemic failure: it extends the streak, trips the
// breaker at the threshold, and re-opens a half-open breaker immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= b.st.Threshold {
		if b.state != BreakerOpen {
			b.trips++
		}
		b.state = BreakerOpen
		b.openedAt = b.st.Now()
		b.probing = false
		b.fails = 0
	}
}

// State returns the current mode.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips counts closed→open transitions since construction.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// RetryAfter estimates how long a rejected caller should wait before
// retrying: the remaining cooldown while open, a nominal beat while
// half-open, zero while closed.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if rem := b.st.Cooldown - b.st.Now().Sub(b.openedAt); rem > 0 {
			return rem
		}
		return time.Second
	case BreakerHalfOpen:
		return time.Second
	}
	return 0
}
