package baseline

import (
	"testing"

	"repro/internal/decompose"
	"repro/internal/icm"
	"repro/internal/qc"
)

func icmFor(t testing.TB, c *qc.Circuit) *icm.Circuit {
	t.Helper()
	r, err := decompose.Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := icm.FromDecomposed(r.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	return ic
}

func TestCanonicalLayout(t *testing.T) {
	c := qc.New("c", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))
	ic := icmFor(t, c)
	l := Canonical(ic)
	if l.W != 3 || l.H != 2 || l.D != 9 {
		t.Fatalf("canonical dims: %+v", l)
	}
	if l.Volume() != 54 {
		t.Fatalf("volume: %d want 54", l.Volume())
	}
	if l.TotalVolume(100) != 154 {
		t.Fatalf("total volume: %d", l.TotalVolume(100))
	}
}

func TestLin1DDepthCompression(t *testing.T) {
	// Two disjoint-interval CNOTs share a slot; an overlapping third
	// cannot.
	c := qc.New("1d", 5)
	c.Append(qc.CNOT(0, 1), qc.CNOT(3, 4), qc.CNOT(1, 3))
	ic := icmFor(t, c)
	l, err := Lin1D(ic)
	if err != nil {
		t.Fatal(err)
	}
	// (0,1) and (3,4) in slot 0; (1,3) in slot 1 → depth 2.
	if l.D != 2 {
		t.Fatalf("1D depth: %d want 2", l.D)
	}
	if l.H != 2 {
		t.Fatalf("1D height: %d", l.H)
	}
	if l.W != rowSpacing1D*5-(rowSpacing1D-1) {
		t.Fatalf("1D width: %d", l.W)
	}
}

func TestLin1DRespectsProgramOrder(t *testing.T) {
	// Same line pair twice: must serialize even though intervals match.
	c := qc.New("order", 2)
	c.Append(qc.CNOT(0, 1), qc.CNOT(0, 1))
	ic := icmFor(t, c)
	l, err := Lin1D(ic)
	if err != nil {
		t.Fatal(err)
	}
	if l.D != 2 {
		t.Fatalf("depth: %d want 2 (program order)", l.D)
	}
}

func TestLin2DPacksTighterThan1D(t *testing.T) {
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	ic := icmFor(t, mustGen(t, spec))
	l1, err := Lin1D(ic)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Lin2D(ic)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Volume() >= l1.Volume() {
		t.Fatalf("2D (%d) should beat 1D (%d)", l2.Volume(), l1.Volume())
	}
	if l2.H != 8 {
		t.Fatalf("2D height: %d want 8", l2.H)
	}
	t.Logf("canonical %d, 1D %d, 2D %d", Canonical(ic).Volume(), l1.Volume(), l2.Volume())
}

func TestBaselinesBeatCanonical(t *testing.T) {
	// Table II ordering: canonical > 1D > 2D on every benchmark.
	for _, name := range []string{"4gt10-v1_81", "4gt4-v0_73"} {
		spec, err := qc.BenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ic := icmFor(t, mustGen(t, spec))
		can := Canonical(ic).Volume()
		l1, err := Lin1D(ic)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := Lin2D(ic)
		if err != nil {
			t.Fatal(err)
		}
		if !(can > l1.Volume() && l1.Volume() > l2.Volume()) {
			t.Fatalf("%s: ordering broken: canonical %d, 1D %d, 2D %d",
				name, can, l1.Volume(), l2.Volume())
		}
	}
}

func TestScheduleRespectsConflicts(t *testing.T) {
	c := qc.New("conf", 6)
	c.Append(qc.CNOT(0, 3), qc.CNOT(2, 5)) // overlapping intervals [0,3], [2,5]
	ic := icmFor(t, c)
	l, err := Lin1D(ic)
	if err != nil {
		t.Fatal(err)
	}
	if l.D != 2 {
		t.Fatalf("conflicting intervals must serialize: depth %d", l.D)
	}
}

func TestRejectsInvalidICM(t *testing.T) {
	bad := &icm.Circuit{
		CNOTs: []icm.CNOT{{ID: 0, Control: 0, Target: 9}},
		TSL:   map[int][]int{},
	}
	if _, err := Lin1D(bad); err == nil {
		t.Fatal("invalid ICM accepted by Lin1D")
	}
	if _, err := Lin2D(bad); err == nil {
		t.Fatal("invalid ICM accepted by Lin2D")
	}
}

// mustGen generates a benchmark circuit, failing the test on error.
func mustGen(tb testing.TB, spec qc.BenchmarkSpec) *qc.Circuit {
	tb.Helper()
	c, err := spec.Generate()
	if err != nil {
		tb.Fatal(err)
	}
	return c
}
