package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/partition"
	"repro/internal/qc"
	"repro/tqec"
)

// Partitioned is the optional partitioned-compile section of an artifact:
// the same generated clustered circuit compiled whole and through the
// partitioned pipeline under identical options, so the artifact records
// whether splitting pays for itself in wall-clock on this machine.
type Partitioned struct {
	// Circuit, Qubits and Gates identify the generated workload.
	Circuit string `json:"circuit"`
	Qubits  int    `json:"qubits"`
	Gates   int    `json:"gates"`
	// Cap is the per-part qubit ceiling the partitioned runs used.
	Cap int `json:"cap"`
	// Parts and Seams describe the cut the partitioner produced.
	Parts int `json:"parts"`
	Seams int `json:"seams"`
	// Whole and Split are the end-to-end wall times of the unpartitioned
	// and partitioned compiles over the iterations.
	Whole Stat `json:"whole"`
	Split Stat `json:"split"`
	// Speedup is Whole.MinNS / Split.MinNS — above 1 the partitioned
	// compile was faster.
	Speedup float64 `json:"speedup"`
	// WholeVolume and SplitVolume record both results' space-time
	// volumes, so the quality side of the trade is visible next to the
	// speedup (slab gaps and seam routes cost volume; independent
	// per-part placements can win some back).
	WholeVolume int `json:"whole_volume"`
	SplitVolume int `json:"split_volume"`
}

// partitionWorkload builds the deterministic partition benchmark circuit:
// `clusters` dense CNOT rings of `size` qubits each, traversed `rounds`
// times, with two Toffolis and a NOT-per-qubit inside each cluster,
// coupled by one bridge CNOT between adjacent clusters — a
// qubit-interaction graph with an obvious small cut, the workload shape
// the partitioner exists for. The Toffolis matter: their decomposition
// swells the ICM enough that whole-circuit placement and routing turn
// superlinear, which is the regime where splitting pays.
func partitionWorkload(clusters, size, rounds int) *qc.Circuit {
	n := clusters * size
	c := qc.New(fmt.Sprintf("clustered%d", n), n)
	for cl := 0; cl < clusters; cl++ {
		base := cl * size
		for r := 0; r < rounds; r++ {
			for i := 0; i < size; i++ {
				c.Append(qc.CNOT(base+i, base+(i+1)%size))
			}
		}
		for t := 0; t < 2; t++ {
			c.Append(qc.Toffoli(base+t, base+t+1, base+t+2))
		}
		for i := 0; i < size; i++ {
			c.Append(qc.NOT(base + i))
		}
	}
	for cl := 0; cl+1 < clusters; cl++ {
		c.Append(qc.CNOT(cl*size+size-1, (cl+1)*size))
	}
	return c
}

// runPartitioned measures the partitioned-compile stage: the clustered
// workload (4 rings of `cap` qubits plus bridges) compiled whole and
// split, Iterations times each, under the pipeline options the rest of
// the artifact uses.
func runPartitioned(ctx context.Context, opts Options) (*Partitioned, error) {
	size := opts.PartitionCap
	if size < 4 {
		// The per-cluster Toffolis span four qubits of the ring.
		return nil, fmt.Errorf("partition cap %d < 4", opts.PartitionCap)
	}
	c := partitionWorkload(4, size, 2)
	p := &Partitioned{
		Circuit: c.Name,
		Qubits:  c.NumQubits(),
		Gates:   c.NumGates(),
		Cap:     opts.PartitionCap,
	}

	base := tqec.DefaultOptions()
	base.Place.Seed = opts.Seed
	whole := make([]time.Duration, 0, opts.Iterations)
	split := make([]time.Duration, 0, opts.Iterations)
	for it := 0; it < opts.Iterations; it++ {
		start := time.Now()
		wres, err := tqec.CompileContext(ctx, c, base)
		if err != nil {
			return nil, fmt.Errorf("whole compile: %w", err)
		}
		whole = append(whole, time.Since(start))
		p.WholeVolume = wres.Volume

		popts := base
		popts.Partition = partition.Options{MaxQubitsPerPart: opts.PartitionCap, Seed: opts.Seed}
		start = time.Now()
		sres, err := tqec.CompilePartitionedContext(ctx, c, popts)
		if err != nil {
			return nil, fmt.Errorf("partitioned compile: %w", err)
		}
		split = append(split, time.Since(start))
		p.SplitVolume = sres.Volume
		p.Parts, p.Seams, _ = sres.Partition.Stats()
	}
	p.Whole = newStat(whole)
	p.Split = newStat(split)
	if p.Split.MinNS > 0 {
		p.Speedup = float64(p.Whole.MinNS) / float64(p.Split.MinNS)
	}
	return p, nil
}
